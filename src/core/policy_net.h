// policy_net.h — the shared per-demand policy network (§3.3, §4).
//
// Each demand is allocated *independently* by one RL agent; all agents share
// this network. Per §4, the default shape is: 24 input neurons (4 flow
// embeddings of 6 elements each), one hidden layer of 24 neurons, and 4
// output neurons followed by softmax normalization into split ratios. The
// number of dense layers is configurable for the Figure 15c sensitivity
// sweep. Because the network is per-demand, its parameter count is oblivious
// to the WAN topology size — the property that makes learning tractable.
#pragma once

#include <optional>
#include <vector>

#include "nn/module.h"
#include "te/problem.h"

namespace teal::core {

struct PolicyConfig {
  int hidden_dim = 24;
  int n_hidden_layers = 1;   // dense layers before the output layer
  double leaky_alpha = 0.01;
};

class PolicyNet {
 public:
  // in_dim = k_paths * embedding_dim; out_dim = k_paths.
  PolicyNet(const PolicyConfig& cfg, int in_dim, int k_paths, util::Rng& rng);

  // Doubles as a reusable workspace: repeated in-place forward() calls into
  // the same object resize every Mat within its existing capacity.
  // ForwardT<double> (alias Forward) is the reference/training cache;
  // ForwardT<float> (alias ForwardF) the narrowed f32 inference mirror.
  template <typename T>
  struct ForwardT {
    nn::BasicMat<T> input;              // (D, in_dim)
    util::AVec<nn::BasicMat<T>> pre;    // hidden pre-activations
    util::AVec<nn::BasicMat<T>> act;    // hidden activations
    nn::BasicMat<T> logits;             // (D, k)
  };
  using Forward = ForwardT<double>;
  using ForwardF = ForwardT<float>;

  // In-place forward: reads fwd.input (which the caller fills, e.g. via
  // build_policy_input), writes pre/act/logits. Allocation-free once warm.
  void forward(Forward& fwd) const;

  // Demand-sharded pair: prepare_forward() sizes pre/act/logits for the
  // (already filled-shape) fwd.input — it must run on one thread before the
  // fan-out, since nn::Mat::resize is not concurrency-safe — then each shard
  // runs forward_rows() on its own demand slice, touching only those rows.
  // Bit-identical to forward() for any row partition.
  void prepare_forward(Forward& fwd) const;
  void forward_rows(Forward& fwd, int row_begin, int row_end) const;

  // Narrowed f32 inference pair over the same sharding contract. Requires
  // prepare_f32() (throws std::logic_error otherwise — the te::Scheme
  // precision knob snapshots the weights).
  void prepare_forward(ForwardF& fwd) const;
  void forward_rows(ForwardF& fwd, int row_begin, int row_end) const;

  // bf16-storage inference pair: identical pass structure and f32 activation
  // arithmetic, but the layer weights are read from bf16 panels. Reuses the
  // ForwardF cache type (activations are f32 either way). Requires
  // prepare_bf16().
  void prepare_forward_bf16(ForwardF& fwd) const;
  void forward_rows_bf16(ForwardF& fwd, int row_begin, int row_end) const;

  // Snapshots the current parameters into blocked f32 mirrors. Not
  // thread-safe against concurrent forwards; re-call after any parameter
  // update.
  void prepare_f32();
  bool f32_ready() const { return out_f32_.has_value(); }

  // Snapshots the current parameters into bf16-storage mirrors (f64 -> f32
  // round-to-nearest, then f32 -> bf16 round-to-nearest-even).
  void prepare_bf16();
  bool bf16_ready() const { return out_bf16_.has_value(); }

  // `input` rows are per-demand concatenated path embeddings (zero-padded for
  // demands with fewer than k paths). Allocates a fresh Forward per call.
  Forward forward(const nn::Mat& input) const;

  // Backward from d(loss)/d(logits); writes d(loss)/d(input).
  void backward(const Forward& fwd, const nn::Mat& grad_logits, nn::Mat& grad_input);

  // Workspace backward for batched training: identical arithmetic to
  // backward(), but the per-layer grad temporaries live in `ws` (warm calls
  // allocate nothing) and the parameter grads accumulate into `grads` —
  // num_params() entries in params() order — instead of Param::g. const:
  // concurrent calls with distinct ws/grads are safe.
  struct BackwardWs {
    nn::Mat g_cur, g_pre;
  };
  void backward_ws(const Forward& fwd, const nn::Mat& grad_logits, BackwardWs& ws,
                   nn::Mat& grad_input, nn::GradRefs grads) const;

  std::vector<nn::Param*> params();
  // Appends the same pointers into a caller-reserved vector without the
  // per-layer temporaries params() composition would cost.
  void append_params(std::vector<nn::Param*>& out);
  std::size_t num_params() const { return (hidden_.size() + 1) * 2; }

  int k_paths() const { return k_paths_; }
  int in_dim() const { return in_dim_; }

 private:
  // Shared body of the f64/f32 prepare_forward and forward_rows pairs.
  template <typename T, typename Lin, typename Out>
  void prepare_forward_impl(ForwardT<T>& fwd, const std::vector<Lin>& hidden,
                            const Out& out) const;
  template <typename T, typename Lin, typename Out>
  void forward_rows_impl(ForwardT<T>& fwd, const std::vector<Lin>& hidden, const Out& out,
                         int row_begin, int row_end) const;

  PolicyConfig cfg_;
  int in_dim_, k_paths_;
  std::vector<nn::Linear> hidden_;
  nn::Linear out_;
  // Narrowed inference mirrors, stored as lane-blocked panels: f32 (empty
  // until prepare_f32()) and bf16 storage (empty until prepare_bf16()).
  std::vector<nn::LinearPackedF32> hidden_f32_;
  std::optional<nn::LinearPackedF32> out_f32_;
  std::vector<nn::LinearBf16> hidden_bf16_;
  std::optional<nn::LinearBf16> out_bf16_;
};

// Assembles the (D, k*dim) policy input matrix from final path embeddings and
// the (D, k) validity mask (1 where the demand has an i-th path).
void build_policy_input(const te::Problem& pb, const nn::Mat& path_embeddings, int k,
                        nn::Mat& input, nn::Mat& mask);

// Row-range variant for sharded callers: fills demand rows [d_begin, d_end)
// of `input`/`mask`, which must be pre-sized to (D, k*dim) and (D, k).
void build_policy_input_rows(const te::Problem& pb, const nn::Mat& path_embeddings, int k,
                             nn::Mat& input, nn::Mat& mask, int d_begin, int d_end);

// f32 variant for the narrowed inference path: the embeddings and the policy
// input are float, but the validity mask stays double — it feeds the f64
// masked softmax downstream, so only NN arithmetic narrows.
void build_policy_input_rows(const te::Problem& pb, const nn::MatF& path_embeddings, int k,
                             nn::MatF& input, nn::Mat& mask, int d_begin, int d_end);

// Contract guard at the policy boundary: a demand that owns at least one
// path must have at least one nonzero mask entry, otherwise the masked
// softmax silently emits an all-zero split row that downstream ADMM consumes
// as "route nothing" (demands with zero paths legitimately keep all-zero
// rows). Throws std::logic_error naming the first offending demand. Checks
// demand rows [d_begin, d_end); cheap (O(rows * k)), run per shard slice on
// the solve path.
void check_policy_mask_rows(const te::Problem& pb, const nn::Mat& mask, int d_begin,
                            int d_end);

// Scatters d(loss)/d(policy input) back into a (N_p, dim) path-embedding grad.
void scatter_policy_input_grad(const te::Problem& pb, const nn::Mat& grad_input, int k,
                               int dim, nn::Mat& grad_paths);

}  // namespace teal::core
