// train_context.h — per-worker state for workspace-batched training (the
// fourth parallelism axis; see DESIGN.md "Training pipeline").
//
// The trainers (COMA*, direct loss) process rollout batches: B traffic
// matrices forwarded, differentiated and back-propagated per optimizer step.
// A TrainContext owns everything that fan-out needs:
//   * one SolveWorkspace per rollout slot — the same reusable forward caches
//     the inference side uses, so warm training steps run forward without
//     heap allocation;
//   * one nn::GradAccum per rollout slot — each rollout's parameter
//     gradients land in its own accumulator (disjoint writes that commute),
//     and reduce() folds them into Param::g strictly in rollout order, so
//     the summed gradient — and therefore the trained parameters — are
//     bit-identical for every worker count (the ShardPlan contract applied
//     to parameter space);
//   * one TrainBackward scratch per worker — backward grad temporaries are
//     fully overwritten per rollout, so sequential rollouts on one worker
//     share them.
//
// Worker knob semantics match the shard knob: 0 = auto (threads available
// to the calling context, capped by the batch size), 1 = sequential, n = at
// most n concurrent rollout chunks. A pure throughput knob — results never
// change. Models without the workspace training seam
// (Model::supports_train_ws() == false, the Figure 14 ablation variants)
// force workers = 1 because their backward_m accumulates into the shared
// Param::g directly.
//
// Memory model (DESIGN.md "Memory model"): the context owns its arenas.
// prepare() binds a root arena on the calling thread, so the slot array,
// the per-slot GradAccum matrices and the backward-scratch array — the bulk
// of a training context's footprint — bump-allocate out of a few chunks
// (<= 5 heap allocations, alloc-hook-verified in tests/train_test.cpp).
// for_slots() additionally binds one arena per rollout chunk inside the
// fan-out, so the *first* training step's lazily-grown state (model forward
// caches, TrainBackward scratch) lands in per-chunk arenas too — each chunk
// id maps to one arena for the context's lifetime, regardless of which pool
// thread runs it. Re-prepare() destroys the containers, resets the arenas
// (retaining their chunks) and rebuilds: the O(1)-allocation topology swap.
// Teardown frees a handful of chunks instead of hundreds of blocks.
#pragma once

#include <algorithm>
#include <vector>

#include "core/model.h"
#include "core/solve_workspace.h"
#include "nn/module.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace teal::core {

class TrainContext {
 public:
  // Resolves the parallelism plan and sizes the per-slot/per-worker state.
  // Called once per training run (allocating); everything after is reused.
  void prepare(Model& model, const te::Problem& pb, int rollout_batch, int workers);

  // True when the model supports the workspace training path (per-slot
  // gradient accumulators + backward_ws). False = legacy sequential path
  // through backward_m.
  bool ws_path() const { return ws_path_; }
  int rollout_batch() const { return rollout_batch_; }
  int workers() const { return workers_; }
  std::vector<nn::Param*>& params() { return params_; }

  // Per-rollout-slot buffers. `ws` carries the model forward caches and the
  // softmax splits; the trainer-specific members are documented where used
  // (coma.cpp / direct_loss.cpp). Values are fully rewritten per rollout.
  struct Slot {
    SolveWorkspace ws;
    nn::GradAccum grads;
    nn::Mat z;                       // COMA: sampled joint action
    nn::Mat grad_logits;             // d(-J)/d(logits)
    nn::Mat grad_splits;             // direct loss: d(-S)/d(splits)
    std::vector<double> advantage;   // COMA: per-agent advantages
    te::Allocation alloc;            // direct loss: flat allocation
    std::vector<double> load;        // direct loss: intended edge loads
    std::vector<char> violated;      // direct loss: per-edge violation flags
    double stat = 0.0;               // per-rollout reward/surrogate term
  };
  Slot& slot(int s) { return slots_[static_cast<std::size_t>(s)]; }

  // Per-worker backward scratch (worker = rollout chunk id).
  TrainBackward& bws(int chunk) { return bws_[static_cast<std::size_t>(chunk)]; }

  // Number of concurrent rollout chunks a step over `n_active` slots runs.
  // The chunk size is fixed from the *full* batch at prepare() time — a
  // trailing partial batch re-uses a prefix of the full-batch chunk ids
  // instead of re-chunking, so its work lands only on chunks (backward
  // scratch, reward simulators) that earlier steps already warmed, keeping
  // warm steps allocation-free. Chunk→slot mapping never affects results.
  int chunks_for(int n_active) const {
    return (std::max(0, n_active) + chunk_ - 1) / chunk_;
  }

  // Runs body(slot, chunk) for slots [0, n_active), fanned over at most
  // workers() chunks via the pool's allocation-free fork-join region. Slot →
  // chunk mapping is deterministic (contiguous ranges); which thread runs a
  // chunk is not, and must not matter — all chunk-indexed state is owned by
  // the chunk id, never the thread.
  template <typename Fn>
  void for_slots(int n_active, Fn&& body) {
    if (n_active <= 0) return;
    const std::size_t chunk = static_cast<std::size_t>(chunk_);
    util::ThreadPool::global().parallel_chunks(
        static_cast<std::size_t>(chunks_for(n_active)),
        [&](std::size_t cb, std::size_t ce) {
          for (std::size_t c = cb; c < ce; ++c) {
            // Chunk-owned arena, bound for the chunk's whole slot range: any
            // buffer the body grows lazily (first-step model caches, backward
            // scratch) comes from the chunk's arena no matter which pool
            // thread runs it. Warm steps allocate nothing, so the binding is
            // inert after the first step. Distinct chunks use distinct
            // arenas, so concurrent chunks never contend.
            util::ArenaScope bind(&chunk_arenas_[c]);
            const std::size_t s_begin = c * chunk;
            const std::size_t s_end =
                std::min(static_cast<std::size_t>(n_active), s_begin + chunk);
            for (std::size_t s = s_begin; s < s_end; ++s) {
              body(static_cast<int>(s), static_cast<int>(c));
            }
          }
        });
  }

  // Ordered sequential reduction: Param::g += slot grads for slots
  // [0, n_active), in slot order. The one place per-rollout gradients meet;
  // keeping it sequential is what buys worker-count bit-identity.
  void reduce(int n_active) {
    for (int s = 0; s < n_active; ++s) {
      slots_[static_cast<std::size_t>(s)].grads.reduce_into(params_);
    }
  }

 private:
  bool ws_path_ = false;
  int rollout_batch_ = 1;
  int workers_ = 1;
  int chunk_ = 1;  // slots per chunk, fixed from the full batch
  // Declaration order is a lifetime contract: the arenas are declared before
  // every container that may hold their memory, so on destruction the
  // containers' deallocations (provenance-header no-ops) run while the
  // chunks backing them are still mapped — exactly what the ASan CI leg
  // polices. `arena_` backs the slot/bws arrays and the GradAccum matrices;
  // `chunk_arenas_[c]` backs what chunk c's first step grows lazily.
  util::Arena arena_;
  // Plain heap vector on purpose: it must survive arena_.reset() across
  // re-prepares so the per-chunk arenas keep their warmed chunks.
  std::vector<util::Arena> chunk_arenas_;
  std::vector<nn::Param*> params_;
  util::AVec<Slot> slots_;
  util::AVec<TrainBackward> bws_;
};

}  // namespace teal::core
