#include "core/variants.h"

#include <cmath>
#include <stdexcept>

namespace teal::core {

namespace {

// Shared helper: builds the (D, k) validity mask.
nn::Mat path_mask(const te::Problem& pb, int k) {
  nn::Mat mask(pb.num_demands(), k);
  for (int d = 0; d < pb.num_demands(); ++d) {
    for (int slot = 0; slot < pb.num_paths(d) && slot < k; ++slot) {
      mask.at(d, slot) = 1.0;
    }
  }
  return mask;
}

double mean_capacity(const te::Problem& pb, const std::vector<double>* caps) {
  std::vector<double> c = caps ? *caps : pb.capacities();
  double m = 1e-9;
  for (double v : c) m += v;
  return m / std::max<std::size_t>(1, c.size());
}

}  // namespace

// ---------------------------------------------------------------- NaiveDnn

struct NaiveDnnModel::Cache {
  nn::Mat input;                 // (1, D)
  std::vector<nn::Mat> pre, act; // per layer
};

NaiveDnnModel::NaiveDnnModel(const NaiveDnnConfig& cfg, const te::Problem& pb,
                             std::uint64_t seed)
    : cfg_(cfg), k_(pb.k_paths()), n_demands_(pb.num_demands()),
      volume_scale_(mean_capacity(pb, nullptr)) {
  util::Rng rng(seed);
  int in = n_demands_;
  for (int l = 0; l < cfg.n_layers - 1; ++l) {
    layers_.emplace_back(in, cfg.hidden_dim, rng);
    in = cfg.hidden_dim;
  }
  layers_.emplace_back(in, n_demands_ * k_, rng);
}

ModelForward NaiveDnnModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                      const std::vector<double>* capacities) const {
  if (pb.num_demands() != n_demands_) {
    throw std::invalid_argument("NaiveDnnModel: problem mismatch");
  }
  auto cache = std::make_shared<Cache>();
  cache->input = nn::Mat(1, n_demands_);
  const double scale = mean_capacity(pb, capacities);
  for (int d = 0; d < n_demands_; ++d) {
    cache->input.at(0, d) = tm.volume[static_cast<std::size_t>(d)] / scale;
  }
  const nn::Mat* cur = &cache->input;
  cache->pre.resize(layers_.size());
  cache->act.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].forward(*cur, cache->pre[l]);
    if (l + 1 < layers_.size()) {
      nn::leaky_relu_forward(cache->pre[l], cache->act[l], cfg_.leaky_alpha);
      cur = &cache->act[l];
    }
  }
  ModelForward out;
  out.mask = path_mask(pb, k_);
  out.logits = nn::Mat(n_demands_, k_);
  const nn::Mat& flat = cache->pre.back();  // (1, D*k)
  for (int d = 0; d < n_demands_; ++d) {
    for (int c = 0; c < k_; ++c) out.logits.at(d, c) = flat.at(0, d * k_ + c);
  }
  out.cache = std::move(cache);
  return out;
}

void NaiveDnnModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                               const nn::Mat& grad_logits) {
  (void)pb;
  const auto& cache = *std::static_pointer_cast<Cache>(fwd.cache);
  nn::Mat g_flat(1, n_demands_ * k_);
  for (int d = 0; d < n_demands_; ++d) {
    for (int c = 0; c < k_; ++c) g_flat.at(0, d * k_ + c) = grad_logits.at(d, c);
  }
  nn::Mat g_cur = std::move(g_flat);
  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    const nn::Mat* input = l == 0 ? &cache.input : &cache.act[static_cast<std::size_t>(l) - 1];
    nn::Mat g_in;
    layers_[static_cast<std::size_t>(l)].backward(*input, g_cur, g_in);
    if (l > 0) {
      nn::leaky_relu_backward(cache.pre[static_cast<std::size_t>(l) - 1], g_in, g_cur,
                              cfg_.leaky_alpha);
    }
  }
}

std::vector<nn::Param*> NaiveDnnModel::params() {
  std::vector<nn::Param*> ps;
  for (auto& l : layers_) {
    for (auto* p : l.params()) ps.push_back(p);
  }
  return ps;
}

// ---------------------------------------------------------------- NaiveGnn

struct NaiveGnnModel::Cache {
  nn::Mat feat;                   // (N, 3) raw node features
  nn::Mat proj_pre, proj_act;     // input projection
  std::vector<nn::Mat> cat, pre, act;  // per MP layer
  nn::Mat pol_in, pol_pre, pol_act;    // policy head
};

NaiveGnnModel::NaiveGnnModel(const NaiveGnnConfig& cfg, const te::Problem& pb,
                             std::uint64_t seed)
    : cfg_(cfg), k_(pb.k_paths()) {
  util::Rng rng(seed);
  input_proj_ = nn::Linear(3, cfg.embed_dim, rng);
  for (int l = 0; l < cfg.n_layers; ++l) {
    layers_.emplace_back(2 * cfg.embed_dim, cfg.embed_dim, rng);
  }
  policy_hidden_ = nn::Linear(2 * cfg.embed_dim + 1, cfg.policy_hidden, rng);
  policy_out_ = nn::Linear(cfg.policy_hidden, k_, rng);
}

ModelForward NaiveGnnModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                      const std::vector<double>* capacities) const {
  const int n = pb.graph().num_nodes();
  const int nd = pb.num_demands();
  auto cache = std::make_shared<Cache>();
  const double scale = mean_capacity(pb, capacities);
  std::vector<double> caps = capacities ? *capacities : pb.capacities();

  cache->feat = nn::Mat(n, 3);
  for (int d = 0; d < nd; ++d) {
    double v = tm.volume[static_cast<std::size_t>(d)] / scale;
    cache->feat.at(pb.demand(d).src, 0) += v;
    cache->feat.at(pb.demand(d).dst, 1) += v;
  }
  for (topo::EdgeId e = 0; e < pb.graph().num_edges(); ++e) {
    cache->feat.at(pb.graph().edge(e).src, 2) += caps[static_cast<std::size_t>(e)] / scale;
  }

  input_proj_.forward(cache->feat, cache->proj_pre);
  nn::leaky_relu_forward(cache->proj_pre, cache->proj_act, cfg_.leaky_alpha);

  cache->cat.resize(layers_.size());
  cache->pre.resize(layers_.size());
  cache->act.resize(layers_.size());
  const nn::Mat* cur = &cache->proj_act;
  const int dim = cfg_.embed_dim;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    // [self | mean over out-neighbors]
    cache->cat[l] = nn::Mat(n, 2 * dim);
    for (int v = 0; v < n; ++v) {
      const double* self = cur->row_ptr(v);
      double* row = cache->cat[l].row_ptr(v);
      std::copy(self, self + dim, row);
      const auto& outs = pb.graph().out_edges(v);
      if (!outs.empty()) {
        for (topo::EdgeId e : outs) {
          const double* nb = cur->row_ptr(pb.graph().edge(e).dst);
          for (int c = 0; c < dim; ++c) row[dim + c] += nb[c];
        }
        for (int c = 0; c < dim; ++c) row[dim + c] /= static_cast<double>(outs.size());
      }
    }
    layers_[l].forward(cache->cat[l], cache->pre[l]);
    nn::leaky_relu_forward(cache->pre[l], cache->act[l], cfg_.leaky_alpha);
    cur = &cache->act[l];
  }

  // Policy head: [src emb | dst emb | volume] per demand.
  cache->pol_in = nn::Mat(nd, 2 * dim + 1);
  for (int d = 0; d < nd; ++d) {
    double* row = cache->pol_in.row_ptr(d);
    const double* se = cur->row_ptr(pb.demand(d).src);
    const double* de = cur->row_ptr(pb.demand(d).dst);
    std::copy(se, se + dim, row);
    std::copy(de, de + dim, row + dim);
    row[2 * dim] = tm.volume[static_cast<std::size_t>(d)] / scale;
  }
  policy_hidden_.forward(cache->pol_in, cache->pol_pre);
  nn::leaky_relu_forward(cache->pol_pre, cache->pol_act, cfg_.leaky_alpha);
  ModelForward out;
  policy_out_.forward(cache->pol_act, out.logits);
  out.mask = path_mask(pb, k_);
  out.cache = std::move(cache);
  return out;
}

void NaiveGnnModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                               const nn::Mat& grad_logits) {
  const auto& cache = *std::static_pointer_cast<Cache>(fwd.cache);
  const int n = pb.graph().num_nodes();
  const int nd = pb.num_demands();
  const int dim = cfg_.embed_dim;

  nn::Mat g_pol_act, g_pol_pre, g_pol_in;
  policy_out_.backward(cache.pol_act, grad_logits, g_pol_act);
  nn::leaky_relu_backward(cache.pol_pre, g_pol_act, g_pol_pre, cfg_.leaky_alpha);
  policy_hidden_.backward(cache.pol_in, g_pol_pre, g_pol_in);

  // Scatter policy-input grads back to node embeddings (last MP layer output).
  nn::Mat g_nodes(n, dim);
  for (int d = 0; d < nd; ++d) {
    const double* row = g_pol_in.row_ptr(d);
    double* gs = g_nodes.row_ptr(pb.demand(d).src);
    double* gd = g_nodes.row_ptr(pb.demand(d).dst);
    for (int c = 0; c < dim; ++c) {
      gs[c] += row[c];
      gd[c] += row[dim + c];
    }
  }

  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    auto ls = static_cast<std::size_t>(l);
    nn::Mat g_pre, g_cat;
    nn::leaky_relu_backward(cache.pre[ls], g_nodes, g_pre, cfg_.leaky_alpha);
    layers_[ls].backward(cache.cat[ls], g_pre, g_cat);
    // Split concat grads and undo the mean aggregation.
    nn::Mat g_prev(n, dim);
    for (int v = 0; v < n; ++v) {
      const double* row = g_cat.row_ptr(v);
      double* gp = g_prev.row_ptr(v);
      for (int c = 0; c < dim; ++c) gp[c] += row[c];
      const auto& outs = pb.graph().out_edges(v);
      if (!outs.empty()) {
        double inv = 1.0 / static_cast<double>(outs.size());
        for (topo::EdgeId e : outs) {
          double* gn = g_prev.row_ptr(pb.graph().edge(e).dst);
          for (int c = 0; c < dim; ++c) gn[c] += row[dim + c] * inv;
        }
      }
    }
    g_nodes = std::move(g_prev);
  }

  nn::Mat g_proj_pre, g_feat;
  nn::leaky_relu_backward(cache.proj_pre, g_nodes, g_proj_pre, cfg_.leaky_alpha);
  input_proj_.backward(cache.feat, g_proj_pre, g_feat);
}

std::vector<nn::Param*> NaiveGnnModel::params() {
  std::vector<nn::Param*> ps;
  for (auto* p : input_proj_.params()) ps.push_back(p);
  for (auto& l : layers_) {
    for (auto* p : l.params()) ps.push_back(p);
  }
  for (auto* p : policy_hidden_.params()) ps.push_back(p);
  for (auto* p : policy_out_.params()) ps.push_back(p);
  return ps;
}

// ----------------------------------------------------------- GlobalPolicy

struct GlobalPolicyModel::Cache {
  FlowGnn::Forward gnn;
  nn::Mat flat;                 // (1, P*dim)
  nn::Mat pre, act, out_pre;    // giant layers
};

GlobalPolicyModel::GlobalPolicyModel(const GlobalPolicyConfig& cfg, const te::Problem& pb,
                                     std::uint64_t seed)
    : cfg_(cfg), k_(pb.k_paths()), total_paths_(pb.total_paths()) {
  util::Rng rng(seed);
  gnn_ = FlowGnn(cfg.gnn, pb.k_paths(), rng);
  const std::size_t in_dim =
      static_cast<std::size_t>(total_paths_) * static_cast<std::size_t>(effective_final_dim(cfg.gnn));
  const std::size_t n_params = in_dim * static_cast<std::size_t>(cfg.hidden_dim) +
                               static_cast<std::size_t>(cfg.hidden_dim) *
                                   static_cast<std::size_t>(total_paths_);
  if (n_params > cfg.max_params) {
    // The paper: "not feasible for large networks such as ASN due to memory
    // errors" (§5.7). Refuse rather than thrash.
    throw std::length_error("GlobalPolicyModel: parameter count " +
                            std::to_string(n_params) + " exceeds memory budget");
  }
  giant_in_ = nn::Linear(static_cast<int>(in_dim), cfg.hidden_dim, rng);
  giant_out_ = nn::Linear(cfg.hidden_dim, total_paths_, rng);
}

ModelForward GlobalPolicyModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                          const std::vector<double>* capacities) const {
  if (pb.total_paths() != total_paths_) {
    throw std::invalid_argument("GlobalPolicyModel: problem mismatch");
  }
  auto cache = std::make_shared<Cache>();
  cache->gnn = gnn_.forward(pb, tm, capacities);
  const int dim = effective_final_dim(cfg_.gnn);
  cache->flat = nn::Mat(1, total_paths_ * dim);
  for (int p = 0; p < total_paths_; ++p) {
    const double* row = cache->gnn.final_paths.row_ptr(p);
    std::copy(row, row + dim, cache->flat.row_ptr(0) + p * dim);
  }
  giant_in_.forward(cache->flat, cache->pre);
  nn::leaky_relu_forward(cache->pre, cache->act, cfg_.leaky_alpha);
  giant_out_.forward(cache->act, cache->out_pre);  // (1, P)

  ModelForward out;
  out.mask = path_mask(pb, k_);
  out.logits = nn::Mat(pb.num_demands(), k_);
  for (int d = 0; d < pb.num_demands(); ++d) {
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k_; ++p, ++slot) {
      out.logits.at(d, slot) = cache->out_pre.at(0, p);
    }
  }
  out.cache = std::move(cache);
  return out;
}

void GlobalPolicyModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                                   const nn::Mat& grad_logits) {
  const auto& cache = *std::static_pointer_cast<Cache>(fwd.cache);
  nn::Mat g_out(1, total_paths_);
  for (int d = 0; d < pb.num_demands(); ++d) {
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k_; ++p, ++slot) {
      g_out.at(0, p) = grad_logits.at(d, slot);
    }
  }
  nn::Mat g_act, g_pre, g_flat;
  giant_out_.backward(cache.act, g_out, g_act);
  nn::leaky_relu_backward(cache.pre, g_act, g_pre, cfg_.leaky_alpha);
  giant_in_.backward(cache.flat, g_pre, g_flat);

  const int dim = effective_final_dim(cfg_.gnn);
  nn::Mat g_paths(total_paths_, dim);
  for (int p = 0; p < total_paths_; ++p) {
    const double* src = g_flat.row_ptr(0) + p * dim;
    std::copy(src, src + dim, g_paths.row_ptr(p));
  }
  gnn_.backward(pb, cache.gnn, g_paths);
}

std::vector<nn::Param*> GlobalPolicyModel::params() {
  auto ps = gnn_.params();
  for (auto* p : giant_in_.params()) ps.push_back(p);
  for (auto* p : giant_out_.params()) ps.push_back(p);
  return ps;
}

}  // namespace teal::core
