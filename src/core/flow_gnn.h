// flow_gnn.h — the FlowGNN feature extractor (§3.2, §4).
//
// FlowGNN is a flow-centric GNN: the *graph attributes* are not WAN sites but
// flow-related entities — one EdgeNode per directed link and one PathNode per
// preconfigured path. An EdgeNode and a PathNode are adjacent iff the edge
// lies on the path. The network alternates between
//   * GNN layers (bipartite message passing EdgeNodes <-> PathNodes) that
//     capture capacity constraints, and
//   * DNN layers (a shared fully-connected layer applied per demand to the
//     concatenation of that demand's PathNode embeddings) that capture demand
//     constraints — PathNodes of the same demand are not otherwise connected.
//
// Initialization follows §3.2: EdgeNode embeddings start from the link
// capacity, PathNode embeddings from the demand volume (both normalized by
// the mean link capacity). Per §4 the embedding starts at one element and is
// widened by one element after every block, refilled with the initialization
// value (the expressiveness technique of Nair et al.); with the default 6
// blocks the final embeddings have 6 elements.
//
// Everything is implemented with explicit forward caches and hand-written
// backward passes — the model is small enough that a full autograd engine
// would be pure overhead.
#pragma once

#include <vector>

#include "core/shard.h"
#include "nn/module.h"
#include "te/problem.h"

namespace teal::core {

struct FlowGnnConfig {
  int n_blocks = 6;   // GNN+DNN blocks (Fig 15a sweeps 4/6/8/10)
  int final_dim = 0;  // final embedding elements; 0 = n_blocks, the paper's
                      // default of +1 element per layer (Fig 15b sweeps 6/12/24)
  double leaky_alpha = 0.01;
};

// Resolved final embedding dimension for a config.
inline int effective_final_dim(const FlowGnnConfig& cfg) {
  return cfg.final_dim > 0 ? cfg.final_dim : cfg.n_blocks;
}

class FlowGnn {
 public:
  FlowGnn() = default;  // empty shell; assign a properly constructed one

  // The layer shapes depend on k_paths (DNN layers act on k concatenated
  // path embeddings), so construction takes the problem's k.
  FlowGnn(const FlowGnnConfig& cfg, int k_paths, util::Rng& rng);

  // Forward caches double as a reusable workspace: run forward() into the
  // same Forward object repeatedly and every Mat resizes in place, so steady-
  // state passes perform no heap allocation.
  //
  // Precision-parameterized: ForwardT<double> (alias Forward) is the
  // reference/training cache, ForwardT<float> (alias ForwardF) the narrowed
  // f32 inference mirror driven by forward_f32(). Only the f64 cache feeds
  // backward().
  template <typename T>
  struct ForwardT {
    // Per-block caches needed by backward.
    struct Block {
      nn::BasicMat<T> edge_in, path_in;    // block inputs (N_e x d), (N_p x d)
      nn::BasicMat<T> edge_cat, path_cat;  // concat [self, agg] inputs to the linears
      nn::BasicMat<T> edge_pre, path_pre;  // pre-activations
      nn::BasicMat<T> edge_act, path_act;  // post-activations (edge output of block)
      nn::BasicMat<T> dnn_in, dnn_pre;     // per-demand concat (D x k*d) and pre-act
      nn::BasicMat<T> path_out;            // paths after the DNN layer (N_p x d)
    };
    // Arena-aware like the Mats inside: a cold forward under a bound
    // util::Arena grows the whole block list out of the arena.
    util::AVec<Block> blocks;
    nn::BasicMat<T> edge_feat0, path_feat0;  // initial 1-dim features (for widening)
    nn::BasicMat<T> final_paths;             // (N_p x n_blocks) final path embeddings

    // Scratch reused across blocks (not needed by backward).
    nn::BasicMat<T> agg_e, agg_p;            // bipartite aggregation outputs
    nn::BasicMat<T> dnn_act;                 // DNN-layer activation
    std::vector<double> caps;  // capacity snapshot when none is passed (always f64)
  };
  using Forward = ForwardT<double>;
  using ForwardF = ForwardT<float>;

  // Runs the GNN over the problem structure with the given per-interval
  // inputs, writing into (and reusing) the caller-owned Forward workspace.
  // `capacities` may override the graph's (link failures, §5.3).
  // Uses an auto demand-shard plan (core::auto_shard_count).
  void forward(const te::Problem& pb, const te::TrafficMatrix& tm,
               const std::vector<double>* capacities, Forward& fwd) const;

  // Sharded forward. Each block runs as two fused passes: an edge pass
  // (per-edge aggregation + dense update, the coupled link-level step,
  // parallelized over edge rows) and a demand pass fanned over `shards` —
  // each shard runs the whole path/DNN pipeline for its demand slice
  // [begin, end), writing disjoint rows of the shared Forward workspace.
  // Results are bit-identical for every shard plan; `stats` (optional,
  // shards.n_shards entries) accumulates per-shard busy time.
  void forward(const te::Problem& pb, const te::TrafficMatrix& tm,
               const std::vector<double>* capacities, Forward& fwd,
               const ShardPlan& shards, ShardStat* stats = nullptr) const;

  // Convenience wrapper allocating a fresh Forward per call.
  Forward forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const std::vector<double>* capacities = nullptr) const;

  // Narrowed f32 inference forward over the same sharding contract as the
  // sharded forward() above (identical pass structure; per-shard row writes
  // stay disjoint, reductions sequential — so any shard plan produces
  // bit-identical f32 results too). Requires prepare_f32(); throws
  // std::logic_error otherwise. Mean-capacity normalization is computed in
  // double and narrowed once, so only the per-row NN arithmetic changes
  // precision.
  void forward_f32(const te::Problem& pb, const te::TrafficMatrix& tm,
                   const std::vector<double>* capacities, ForwardF& fwd,
                   const ShardPlan& shards, ShardStat* stats = nullptr) const;

  // Snapshots the current parameters into blocked f32 mirrors for
  // forward_f32(). Not thread-safe against concurrent forwards; call before
  // inference starts and re-call after any parameter update.
  void prepare_f32();
  bool f32_ready() const { return !edge_f32_.empty(); }

  // bf16-storage forward: same pass structure, sharding contract and f32
  // activation arithmetic as forward_f32(), but the layer weights are read
  // from bf16 panels (widened to f32 in the kernel inner loop). Requires
  // prepare_bf16(); throws std::logic_error otherwise.
  void forward_bf16(const te::Problem& pb, const te::TrafficMatrix& tm,
                    const std::vector<double>* capacities, ForwardF& fwd,
                    const ShardPlan& shards, ShardStat* stats = nullptr) const;

  // Snapshots the current parameters into bf16-storage mirrors (f64 -> f32
  // round-to-nearest, then f32 -> bf16 round-to-nearest-even). Same
  // re-snapshot contract as prepare_f32().
  void prepare_bf16();
  bool bf16_ready() const { return !edge_bf16_.empty(); }

  // Backpropagates `grad_final_paths` (same shape as Forward::final_paths),
  // accumulating parameter gradients.
  void backward(const te::Problem& pb, const Forward& fwd, const nn::Mat& grad_final_paths);

  // Workspace backward for batched training: same arithmetic as backward(),
  // with every per-block grad temporary owned by `ws` (allocation-free once
  // warm) and the parameter grads accumulated into `grads` — num_params()
  // entries in params() order — instead of Param::g. const: concurrent
  // calls with distinct ws/grads are safe.
  struct BackwardWs {
    nn::Mat g_path_out, g_edge_out;          // running output grads per block
    nn::Mat g_dnn_act, g_dnn_pre, g_dnn_in;  // DNN-layer backward
    nn::Mat g_path_act, g_path_pre, g_path_cat;
    nn::Mat g_edge_pre, g_edge_cat;
    nn::Mat g_path_in, g_edge_in;            // concat-split self halves
    nn::Mat g_agg_edges, g_agg_paths;        // concat-split aggregation halves
  };
  void backward_ws(const te::Problem& pb, const Forward& fwd,
                   const nn::Mat& grad_final_paths, BackwardWs& ws,
                   nn::GradRefs grads) const;

  std::vector<nn::Param*> params();
  // Appends the same pointers into a caller-reserved vector without the
  // per-layer temporaries params() composition would cost.
  void append_params(std::vector<nn::Param*>& out);
  // Layout of params()/backward_ws grads: per layer-kind blocks of (weight,
  // bias) pairs — edge layers first, then path layers, then DNN layers.
  std::size_t num_params() const {
    return (edge_linear_.size() + path_linear_.size() + dnn_linear_.size()) * 2;
  }

  int final_dim() const { return dims_.empty() ? 0 : dims_.back(); }
  // Working embedding dimension of block l.
  int block_dim(int l) const { return dims_[static_cast<std::size_t>(l)]; }
  const FlowGnnConfig& config() const { return cfg_; }
  int k_paths() const { return k_paths_; }

 private:
  // Fused per-row passes of one block (see forward), generic over the
  // element type T and the layer type Lin (nn::Linear for f64, a blocked
  // nn::PackedLinear for the narrowed paths): the edge pass covers edge rows
  // [e_begin, e_end), the demand pass covers demands [d_begin, d_end) —
  // aggregation gather, concat, dense update, activation and widening for
  // the slice, all reading only buffers stable during the block.
  template <typename T, typename Lin>
  void edge_pass_rows(const te::Problem& pb, ForwardT<T>& fwd,
                      const std::vector<Lin>& edge_lin, int l, int e_begin,
                      int e_end) const;
  template <typename T, typename Lin>
  void demand_pass_rows(const te::Problem& pb, ForwardT<T>& fwd,
                        const std::vector<Lin>& path_lin, const std::vector<Lin>& dnn_lin,
                        int l, int d_begin, int d_end) const;
  // Shared body of the f64 and f32 forwards.
  template <typename T, typename Lin>
  void forward_impl(const te::Problem& pb, const te::TrafficMatrix& tm,
                    const std::vector<double>* capacities, ForwardT<T>& fwd,
                    const ShardPlan& shards, ShardStat* stats,
                    const std::vector<Lin>& edge_lin, const std::vector<Lin>& path_lin,
                    const std::vector<Lin>& dnn_lin) const;

  // Backward message-passing transposes.
  void scatter_grad_edges_from_paths(const te::Problem& pb, const nn::Mat& g_agg,
                                     nn::Mat& g_paths) const;
  void scatter_grad_paths_from_edges(const te::Problem& pb, const nn::Mat& g_agg,
                                     nn::Mat& g_edges) const;

  FlowGnnConfig cfg_;
  int k_paths_ = 0;
  // Working dim per block: interpolated from 1 up to effective_final_dim by
  // widening (appending init-value columns) between blocks (§4).
  std::vector<int> dims_;
  // Per block: edge-update, path-update (input 2d -> d) and DNN (k*d -> k*d).
  std::vector<nn::Linear> edge_linear_, path_linear_, dnn_linear_;
  // Narrowed inference mirrors of the same layers, stored as lane-blocked
  // panels (nn::PackedLinear) so the forward runs the broadcast-FMA kernel:
  // f32 panels (empty until prepare_f32()) and bf16-storage panels (empty
  // until prepare_bf16()).
  std::vector<nn::LinearPackedF32> edge_f32_, path_f32_, dnn_f32_;
  std::vector<nn::LinearBf16> edge_bf16_, path_bf16_, dnn_bf16_;
};

}  // namespace teal::core
