// variants.h — the Figure 14 ablation models (§5.7).
//
// Each variant replaces exactly one of Teal's design decisions and plugs into
// the same trainers and TealScheme wrapper via the Model interface:
//
//  * NaiveDnnModel  ("Teal w/ naive DNN")   — a fully-connected network that
//    maps the raw traffic matrix straight to all split logits, ignoring WAN
//    connectivity entirely.
//  * NaiveGnnModel  ("Teal w/ naive GNN")   — a conventional GNN over the WAN
//    topology itself (one node per network site, message passing over links);
//    demands read the embeddings of their endpoints. Captures connectivity
//    but not flows/paths.
//  * GlobalPolicyModel ("Teal w/ global policy") — FlowGNN features feed one
//    gigantic policy network that ingests *all* path embeddings at once and
//    emits *all* split logits. Parameter count scales with topology size; on
//    large WANs construction exceeds a memory budget and throws, reproducing
//    the paper's "memory errors" on ASN.
#pragma once

#include "core/flow_gnn.h"
#include "core/model.h"

namespace teal::core {

struct NaiveDnnConfig {
  int hidden_dim = 128;
  int n_layers = 6;  // matches "6-layer fully-connected" in §5.7
  double leaky_alpha = 0.01;
};

class NaiveDnnModel : public Model {
 public:
  // The input/output dims are baked from the problem (D and D*k), so the
  // model is inherently tied to one topology and demand set.
  NaiveDnnModel(const NaiveDnnConfig& cfg, const te::Problem& pb, std::uint64_t seed = 42);

  ModelForward forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                         const std::vector<double>* capacities = nullptr) const override;
  void backward_m(const te::Problem& pb, const ModelForward& fwd,
                  const nn::Mat& grad_logits) override;
  std::vector<nn::Param*> params() override;
  int k_paths() const override { return k_; }

 private:
  struct Cache;
  NaiveDnnConfig cfg_;
  int k_, n_demands_;
  double volume_scale_;
  std::vector<nn::Linear> layers_;
};

struct NaiveGnnConfig {
  int n_layers = 6;
  int embed_dim = 6;
  int policy_hidden = 24;
  double leaky_alpha = 0.01;
};

class NaiveGnnModel : public Model {
 public:
  NaiveGnnModel(const NaiveGnnConfig& cfg, const te::Problem& pb, std::uint64_t seed = 42);

  ModelForward forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                         const std::vector<double>* capacities = nullptr) const override;
  void backward_m(const te::Problem& pb, const ModelForward& fwd,
                  const nn::Mat& grad_logits) override;
  std::vector<nn::Param*> params() override;
  int k_paths() const override { return k_; }

 private:
  struct Cache;
  NaiveGnnConfig cfg_;
  int k_;
  // Node features: [out-demand, in-demand, sum adjacent capacity] -> embed.
  nn::Linear input_proj_;
  std::vector<nn::Linear> layers_;  // message passing: [self | mean nbrs] -> embed
  nn::Linear policy_hidden_, policy_out_;  // [src emb | dst emb | volume] -> k logits
};

struct GlobalPolicyConfig {
  FlowGnnConfig gnn;
  int hidden_dim = 256;
  double leaky_alpha = 0.01;
  // Construction throws if the giant layer would exceed this many parameters
  // (the paper reports memory errors on ASN; 18.1 GB of LP state is its
  // reference point, we budget ~2e8 doubles ~ 1.6 GB for the weight matrix).
  std::size_t max_params = 200'000'000;
};

class GlobalPolicyModel : public Model {
 public:
  GlobalPolicyModel(const GlobalPolicyConfig& cfg, const te::Problem& pb,
                    std::uint64_t seed = 42);

  ModelForward forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                         const std::vector<double>* capacities = nullptr) const override;
  void backward_m(const te::Problem& pb, const ModelForward& fwd,
                  const nn::Mat& grad_logits) override;
  std::vector<nn::Param*> params() override;
  int k_paths() const override { return k_; }

 private:
  struct Cache;
  GlobalPolicyConfig cfg_;
  int k_, total_paths_;
  FlowGnn gnn_;
  nn::Linear giant_in_, giant_out_;  // (P*dim) -> hidden -> P logits
};

}  // namespace teal::core
