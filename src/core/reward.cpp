#include "core/reward.h"

#include <algorithm>
#include <cmath>

#include "core/model.h"
#include "lp/path_lp.h"

namespace teal::core {

RewardSimulator::RewardSimulator(const te::Problem& pb, te::Objective obj,
                                 double latency_penalty)
    : pb_(pb), obj_(obj), latency_penalty_(latency_penalty) {
  if (obj == te::Objective::kLatencyPenalizedFlow) {
    path_weight_ = lp::latency_penalty_weights(pb, latency_penalty);
  } else {
    path_weight_.assign(static_cast<std::size_t>(pb.total_paths()), 1.0);
  }
}

void RewardSimulator::set_state(const te::TrafficMatrix& tm,
                                const std::vector<double>& capacities,
                                const nn::Mat& splits) {
  tm_ = &tm;
  caps_ = capacities;
  splits_ = splits;
  allocation_from_splits_into(pb_, splits, alloc_);
  te::edge_loads_into(pb_, tm, alloc_, load_);
  // Global reward through the shared *_from_loads evaluation forms — the
  // same arithmetic objective_score runs, with every buffer reused.
  switch (obj_) {
    case te::Objective::kTotalFlow:
      global_reward_ =
          te::total_feasible_flow_from_loads(pb_, tm, alloc_, caps_, load_, factor_);
      break;
    case te::Objective::kMinMaxLinkUtil:
      global_reward_ = -te::max_link_utilization_from_loads(caps_, load_);
      break;
    case te::Objective::kLatencyPenalizedFlow:
      global_reward_ = te::latency_penalized_flow_from_loads(
          pb_, tm, alloc_, latency_penalty_, caps_, load_, factor_);
      break;
  }
}

RewardSimulator::Scratch RewardSimulator::make_scratch() const {
  Scratch s;
  s.edge_load_delta.assign(static_cast<std::size_t>(pb_.graph().num_edges()), 0.0);
  s.touched.reserve(64);
  return s;
}

double RewardSimulator::value_of(int d, const double* candidate, Scratch& scratch) const {
  const double vol = tm_->volume[static_cast<std::size_t>(d)];
  scratch.touched.clear();

  // Replace demand d's contribution on every edge its paths touch.
  int slot = 0;
  for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p, ++slot) {
    const double old_f = splits_.at(d, slot) * vol;
    const double new_f = std::max(0.0, candidate[slot]) * vol;
    const double delta = new_f - old_f;
    for (topo::EdgeId e : pb_.path_edges(p)) {
      auto es = static_cast<std::size_t>(e);
      if (scratch.edge_load_delta[es] == 0.0) scratch.touched.push_back(e);
      scratch.edge_load_delta[es] += delta;
    }
  }
  // Note: an edge whose delta sums back to exactly zero may be listed twice in
  // `touched`; harmless for the computation below (idempotent reads).

  auto factor_at = [&](topo::EdgeId e, double load) {
    double c = caps_[static_cast<std::size_t>(e)];
    if (load <= c) return 1.0;
    return load > 0.0 ? c / load : 1.0;
  };

  double value = 0.0;
  if (obj_ == te::Objective::kMinMaxLinkUtil) {
    // Local MLU proxy: the worst utilization among edges this demand can see.
    double worst = 0.0;
    slot = 0;
    for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p, ++slot) {
      for (topo::EdgeId e : pb_.path_edges(p)) {
        auto es = static_cast<std::size_t>(e);
        double c = caps_[es];
        double ld = load_[es] + scratch.edge_load_delta[es];
        worst = std::max(worst, c > 0.0 ? ld / c : (ld > 0.0 ? 1e9 : 0.0));
      }
    }
    value = -worst;
  } else {
    // Own delivered (latency-weighted if applicable).
    slot = 0;
    for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p, ++slot) {
      const double f = std::max(0.0, candidate[slot]) * vol;
      if (f <= 0.0) continue;
      double surv = 1.0;
      for (topo::EdgeId e : pb_.path_edges(p)) {
        auto es = static_cast<std::size_t>(e);
        surv = std::min(surv, factor_at(e, load_[es] + scratch.edge_load_delta[es]));
      }
      value += path_weight_[static_cast<std::size_t>(p)] * f * surv;
    }
    // Externality on other flows sharing the touched edges: their intended
    // volume scaled by the (possibly degraded) survival factor.
    for (topo::EdgeId e : scratch.touched) {
      auto es = static_cast<std::size_t>(e);
      double new_load = load_[es] + scratch.edge_load_delta[es];
      // Others' intended volume on e under the *current* joint action: total
      // minus this demand's current contribution.
      double own_old = 0.0;
      int s2 = 0;
      for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p, ++s2) {
        for (topo::EdgeId pe : pb_.path_edges(p)) {
          if (pe == e) own_old += splits_.at(d, s2) * vol;
        }
      }
      double others = std::max(0.0, load_[es] - own_old);
      value += others * factor_at(e, new_load);
    }
  }

  // Reset scratch.
  for (topo::EdgeId e : scratch.touched) {
    scratch.edge_load_delta[static_cast<std::size_t>(e)] = 0.0;
  }
  return value;
}

double RewardSimulator::global_reward() const { return global_reward_; }

}  // namespace teal::core
