#include "core/direct_loss.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "lp/path_lp.h"

namespace teal::core {

DirectLossStats train_direct_loss(Model& model, const te::Problem& pb,
                                  const traffic::Trace& train, te::Objective obj,
                                  const DirectLossConfig& cfg) {
  if (obj == te::Objective::kMinMaxLinkUtil) {
    // The surrogate is defined for flow objectives (Appendix A); identifying
    // one for MLU is exactly the difficulty §3.3 cites.
    throw std::invalid_argument("train_direct_loss: no surrogate defined for MLU");
  }
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  const std::vector<double> caps = pb.capacities();
  std::vector<double> weight(static_cast<std::size_t>(pb.total_paths()), 1.0);
  if (obj == te::Objective::kLatencyPenalizedFlow) {
    weight = lp::latency_penalty_weights(pb, cfg.latency_penalty);
  }

  DirectLossStats stats;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double surrogate_sum = 0.0;
    for (int t = 0; t < train.size(); ++t) {
      const te::TrafficMatrix& tm = train.at(t);
      auto fwd = model.forward_m(pb, tm);
      nn::Mat splits = splits_from_logits(fwd.logits, fwd.mask);
      te::Allocation a = allocation_from_splits(pb, splits);

      // Violated-edge indicator.
      auto load = te::edge_loads(pb, tm, a);
      std::vector<char> violated(load.size(), 0);
      for (std::size_t e = 0; e < load.size(); ++e) {
        violated[e] = load[e] > caps[e] ? 1 : 0;
      }
      surrogate_sum +=
          te::surrogate_loss_value(pb, tm, a, &caps) / std::max(1e-9, tm.total());

      // dS/dsplit(d, slot) = vol * (w_p - #violated edges on p); minimize -S.
      nn::Mat grad_splits(nd, k);
      for (int d = 0; d < nd; ++d) {
        const double vol = tm.volume[static_cast<std::size_t>(d)];
        int slot = 0;
        for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k; ++p, ++slot) {
          int n_viol = 0;
          for (topo::EdgeId e : pb.path_edges(p)) {
            n_viol += violated[static_cast<std::size_t>(e)];
          }
          grad_splits.at(d, slot) =
              -vol * (weight[static_cast<std::size_t>(p)] - static_cast<double>(n_viol));
        }
      }
      nn::Mat grad_logits;
      nn::softmax_rows_backward(splits, grad_splits, grad_logits);

      adam.zero_grad();
      model.backward_m(pb, fwd, grad_logits);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
    }
    double mean_surrogate = surrogate_sum / std::max(1, train.size());
    stats.epoch_surrogate.push_back(mean_surrogate);
    if (cfg.verbose) {
      std::printf("[direct] epoch %d mean normalized surrogate %.4f\n", epoch,
                  mean_surrogate);
    }
  }
  return stats;
}

}  // namespace teal::core
