#include "core/direct_loss.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/train_context.h"
#include "lp/path_lp.h"
#include "util/alloc_hook.h"

namespace teal::core {

DirectLossStats train_direct_loss(Model& model, const te::Problem& pb,
                                  const traffic::Trace& train, te::Objective obj,
                                  const DirectLossConfig& cfg) {
  if (obj == te::Objective::kMinMaxLinkUtil) {
    // The surrogate is defined for flow objectives (Appendix A); identifying
    // one for MLU is exactly the difficulty §3.3 cites.
    throw std::invalid_argument("train_direct_loss: no surrogate defined for MLU");
  }
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  const std::vector<double> caps = pb.capacities();
  std::vector<double> weight(static_cast<std::size_t>(pb.total_paths()), 1.0);
  if (obj == te::Objective::kLatencyPenalizedFlow) {
    weight = lp::latency_penalty_weights(pb, cfg.latency_penalty);
  }

  TrainContext ctx;
  ctx.prepare(model, pb, cfg.rollout_batch, cfg.workers);
  const int batch = ctx.rollout_batch();
  // Axis composition, same rule as the COMA trainer: concurrent rollouts run
  // sequential inners; a lone rollout fans its per-demand stages over the
  // idle pool. Bit-identical either way (disjoint rows, no randomness).
  const ShardPlan inner_auto =
      ShardPlan::make(nd, auto_shard_count(nd, pb.total_paths()));
  const ShardPlan inner_seq = ShardPlan::sequential(nd);

  DirectLossStats stats;
  int step_index = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double surrogate_sum = 0.0;
    for (int t0 = 0; t0 < train.size(); t0 += batch) {
      const int n_active = std::min(batch, train.size() - t0);
      const ShardPlan& plan = ctx.chunks_for(n_active) > 1 ? inner_seq : inner_auto;
      util::AllocCounter step_allocs;

      adam.zero_grad();
      ctx.for_slots(n_active, [&](int s, int chunk) {
        const int t = t0 + s;
        const te::TrafficMatrix& tm = train.at(t);
        auto& slot = ctx.slot(s);

        model.forward_ws(pb, tm, &caps, slot.ws.fwd, plan, nullptr);
        const nn::Mat& logits = slot.ws.fwd.logits;
        const nn::Mat& mask = slot.ws.fwd.mask;

        // Splits + flat allocation, fused per demand slice.
        slot.ws.splits.resize(nd, k);
        slot.alloc.split.resize(static_cast<std::size_t>(pb.total_paths()));
        run_sharded(plan, nullptr, [&](int /*shard*/, int d0, int d1) {
          nn::softmax_rows_range(logits, mask, slot.ws.splits, d0, d1);
          allocation_from_splits_rows(pb, slot.ws.splits, slot.alloc, d0, d1);
        });

        // Intended loads + violated-edge indicator (cross-demand reductions,
        // sequential on the rollout's thread).
        te::edge_loads_into(pb, tm, slot.alloc, slot.load);
        slot.violated.assign(slot.load.size(), 0);
        for (std::size_t e = 0; e < slot.load.size(); ++e) {
          slot.violated[e] = slot.load[e] > caps[e] ? 1 : 0;
        }
        // Surrogate S = intended flow - total overutilization (Appendix A),
        // through the shared evaluation form on the loads already at hand.
        slot.stat = te::surrogate_loss_value_from_loads(pb, tm, slot.alloc, caps, slot.load) /
                    std::max(1e-9, tm.total());

        // dS/dsplit(d, slot) = vol * (w_p - #violated edges on p); minimize -S.
        slot.grad_splits.resize(nd, k);
        slot.grad_splits.zero();
        run_sharded(plan, nullptr, [&](int /*shard*/, int d0, int d1) {
          for (int d = d0; d < d1; ++d) {
            const double vol = tm.volume[static_cast<std::size_t>(d)];
            int pslot = 0;
            for (int p = pb.path_begin(d); p < pb.path_end(d) && pslot < k;
                 ++p, ++pslot) {
              int n_viol = 0;
              for (topo::EdgeId e : pb.path_edges(p)) {
                n_viol += slot.violated[static_cast<std::size_t>(e)];
              }
              slot.grad_splits.at(d, pslot) =
                  -vol *
                  (weight[static_cast<std::size_t>(p)] - static_cast<double>(n_viol));
            }
          }
        });
        nn::softmax_rows_backward(slot.ws.splits, slot.grad_splits, slot.grad_logits);

        if (ctx.ws_path()) {
          slot.grads.zero();
          model.backward_ws(pb, slot.ws.fwd, slot.grad_logits, ctx.bws(chunk),
                            slot.grads.refs());
        } else {
          model.backward_m(pb, slot.ws.fwd, slot.grad_logits);
        }
      });

      if (ctx.ws_path()) ctx.reduce(n_active);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
      for (int s = 0; s < n_active; ++s) surrogate_sum += ctx.slot(s).stat;

      if (step_index > 0) stats.warm_step_allocs += step_allocs.count();
      ++step_index;
    }
    double mean_surrogate = surrogate_sum / std::max(1, train.size());
    stats.epoch_surrogate.push_back(mean_surrogate);
    if (cfg.verbose) {
      std::printf("[direct] epoch %d mean normalized surrogate %.4f\n", epoch,
                  mean_surrogate);
    }
  }
  return stats;
}

}  // namespace teal::core
