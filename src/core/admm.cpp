#include "core/admm.h"

#include <algorithm>
#include <cmath>

#include "te/objective.h"
#include "util/thread_pool.h"

namespace teal::core {

int default_admm_iterations(int n_nodes) { return n_nodes < 100 ? 2 : 5; }

Admm::Admm(const te::Problem& pb, AdmmConfig cfg) : pb_(pb), cfg_(std::move(cfg)) {
  z_offset_.resize(static_cast<std::size_t>(pb.total_paths()) + 1, 0);
  for (int p = 0; p < pb.total_paths(); ++p) {
    z_offset_[static_cast<std::size_t>(p) + 1] =
        z_offset_[static_cast<std::size_t>(p)] +
        static_cast<int>(pb.path_edges(p).size());
  }
  edge_incidence_.assign(static_cast<std::size_t>(pb.graph().num_edges()), {});
  for (int p = 0; p < pb.total_paths(); ++p) {
    int zi = z_offset_[static_cast<std::size_t>(p)];
    for (topo::EdgeId e : pb.path_edges(p)) {
      edge_incidence_[static_cast<std::size_t>(e)].push_back(Incidence{zi, p});
      ++zi;
    }
  }
}

Admm::Residuals Admm::fine_tune(const te::TrafficMatrix& tm,
                                const std::vector<double>& capacities,
                                te::Allocation& a) const {
  Workspace ws;
  return fine_tune(tm, capacities, a, ws);
}

Admm::Residuals Admm::fine_tune(const te::TrafficMatrix& tm,
                                const std::vector<double>& capacities,
                                te::Allocation& a, Workspace& ws) const {
  const int nd = pb_.num_demands();
  return fine_tune(tm, capacities, a, ws,
                   ShardPlan::make(nd, auto_shard_count(nd, pb_.total_paths())));
}

Admm::Residuals Admm::fine_tune(const te::TrafficMatrix& tm,
                                const std::vector<double>& capacities,
                                te::Allocation& a, Workspace& ws, const ShardPlan& shards,
                                ShardStat* stats) const {
  const int nd = pb_.num_demands();
  const int ne = pb_.graph().num_edges();
  const int np = pb_.total_paths();
  const int nz = z_offset_.back();
  const double rho = cfg_.rho;
  auto& pool = util::ThreadPool::global();

  // Normalize volumes/capacities by the mean capacity so rho=1 is a sensible
  // penalty on every topology.
  double scale = 1e-9;
  for (double c : capacities) scale += c;
  scale /= std::max<std::size_t>(1, capacities.size());
  auto& vol = ws.vol;
  vol.resize(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    vol[static_cast<std::size_t>(d)] = tm.volume[static_cast<std::size_t>(d)] / scale;
  }
  auto& cap = ws.cap;
  cap.resize(static_cast<std::size_t>(ne));
  for (int e = 0; e < ne; ++e) {
    cap[static_cast<std::size_t>(e)] = capacities[static_cast<std::size_t>(e)] / scale;
  }

  auto violation = [&](const util::AVec<double>& x) {
    double v = 0.0;
    for (int d = 0; d < nd; ++d) {
      double sum = 0.0;
      for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p) {
        sum += x[static_cast<std::size_t>(p)];
      }
      v += std::max(0.0, sum - 1.0);
    }
    auto& load = ws.load;
    load.assign(static_cast<std::size_t>(ne), 0.0);
    for (int p = 0; p < np; ++p) {
      double f = x[static_cast<std::size_t>(p)] *
                 vol[static_cast<std::size_t>(pb_.demand_of_path(p))];
      for (topo::EdgeId e : pb_.path_edges(p)) load[static_cast<std::size_t>(e)] += f;
    }
    for (int e = 0; e < ne; ++e) {
      v += std::max(0.0, load[static_cast<std::size_t>(e)] - cap[static_cast<std::size_t>(e)]);
    }
    return v;
  };

  // Primal/dual state.
  auto& x = ws.x;
  x.assign(a.split.begin(), a.split.end());
  for (double& xv : x) xv = std::clamp(xv, 0.0, 1.0);
  Residuals res;
  res.before = violation(x);

  auto& z = ws.z;
  z.resize(static_cast<std::size_t>(nz));
  auto& l4 = ws.l4;
  l4.assign(static_cast<std::size_t>(nz), 0.0);
  for (int p = 0; p < np; ++p) {
    double f = x[static_cast<std::size_t>(p)] *
               vol[static_cast<std::size_t>(pb_.demand_of_path(p))];
    for (int zi = z_offset_[static_cast<std::size_t>(p)];
         zi < z_offset_[static_cast<std::size_t>(p) + 1]; ++zi) {
      z[static_cast<std::size_t>(zi)] = f;
    }
  }
  auto& s1 = ws.s1;
  s1.resize(static_cast<std::size_t>(nd));
  auto& l1 = ws.l1;
  l1.assign(static_cast<std::size_t>(nd), 0.0);
  auto& x_sum = ws.x_sum;
  x_sum.resize(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    double sum = 0.0;
    for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p) {
      sum += x[static_cast<std::size_t>(p)];
    }
    x_sum[static_cast<std::size_t>(d)] = sum;
    s1[static_cast<std::size_t>(d)] = std::max(0.0, 1.0 - sum);
  }
  auto& z_sum = ws.z_sum;
  z_sum.resize(static_cast<std::size_t>(ne));
  for (int e = 0; e < ne; ++e) {
    double sum = 0.0;
    for (const auto& inc : edge_incidence_[static_cast<std::size_t>(e)]) {
      sum += z[static_cast<std::size_t>(inc.z_index)];
    }
    z_sum[static_cast<std::size_t>(e)] = sum;
  }
  auto& s3 = ws.s3;
  s3.resize(static_cast<std::size_t>(ne));
  auto& l3 = ws.l3;
  l3.assign(static_cast<std::size_t>(ne), 0.0);
  for (int e = 0; e < ne; ++e) {
    s3[static_cast<std::size_t>(e)] =
        std::max(0.0, cap[static_cast<std::size_t>(e)] - z_sum[static_cast<std::size_t>(e)]);
  }

  const bool weighted = !cfg_.path_weight.empty();

  for (int it = 0; it < cfg_.iterations; ++it) {
    // ---- F-update: per-demand nonnegative QP via coordinate descent,
    // fanned over the demand shards. Each shard touches only its own
    // demands' x/x_sum entries and reads z/l4/s1/l1 held fixed this block.
    run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
      for (int d = d0; d < d1; ++d) {
        const auto di = static_cast<std::size_t>(d);
        const double dv = vol[di];
        for (int sweep = 0; sweep < cfg_.coord_sweeps; ++sweep) {
          for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p) {
            auto ps = static_cast<std::size_t>(p);
            const double m = static_cast<double>(pb_.path_edges(p).size());
            double sum_l4 = 0.0, sum_z = 0.0;
            for (int zi = z_offset_[ps]; zi < z_offset_[ps + 1]; ++zi) {
              sum_l4 += l4[static_cast<std::size_t>(zi)];
              sum_z += z[static_cast<std::size_t>(zi)];
            }
            const double w = weighted ? cfg_.path_weight[ps] : 1.0;
            const double rest = x_sum[di] - x[ps] + s1[di] - 1.0;
            double num = w * dv - l1[di] - dv * sum_l4 - rho * rest + rho * dv * sum_z;
            double x_new = std::clamp(num / (rho * (1.0 + dv * dv * m)), 0.0, 1.0);
            x_sum[di] += x_new - x[ps];
            x[ps] = x_new;
          }
        }
      }
    });

    // ---- Coupled link-level block, fused per edge: s3-update, exact
    // z-update, l3 dual ascent. The z-update reads x of *other* demands
    // through the edge incidence list — the coupling that makes this an
    // edge pass, not a demand shard. Per-edge rows are independent and
    // deterministic (incidence order is fixed), so any chunking is
    // bit-identical. The per-edge quadratic has Hessian rho*(I + 1 1ᵀ); by
    // Sherman-Morrison, with a_p = f_p + l4_p/rho - l3/rho + cap - s3, the
    // minimizer is z_p = a_p - S with S = (sum_p a_p) / (n + 1). z is
    // unbounded, so this block minimization is exact — important for ADMM
    // convergence.
    pool.parallel_chunks(static_cast<std::size_t>(ne), [&](std::size_t b, std::size_t e_) {
      for (std::size_t ei = b; ei < e_; ++ei) {
        s3[ei] = std::max(0.0, cap[ei] - z_sum[ei] - l3[ei] / rho);
        const auto& incs = edge_incidence_[ei];
        if (!incs.empty()) {
          const double offset = -l3[ei] / rho + cap[ei] - s3[ei];
          double a_sum = 0.0;
          for (const auto& inc : incs) {
            auto zi = static_cast<std::size_t>(inc.z_index);
            const double f =
                x[static_cast<std::size_t>(inc.path)] *
                vol[static_cast<std::size_t>(pb_.demand_of_path(inc.path))];
            // Stash a_p in z temporarily.
            z[zi] = f + l4[zi] / rho + offset;
            a_sum += z[zi];
          }
          const double S = a_sum / (static_cast<double>(incs.size()) + 1.0);
          for (const auto& inc : incs) {
            z[static_cast<std::size_t>(inc.z_index)] -= S;
          }
          z_sum[ei] = a_sum - static_cast<double>(incs.size()) * S;
        }
        l3[ei] += rho * (z_sum[ei] + s3[ei] - cap[ei]);
      }
    });

    // ---- Demand-side block 2 + dual ascent, fused per demand and fanned
    // over the shards: s1-update, l1 ascent, and the l4 ascent over the
    // demand's own (contiguous) path/z range.
    run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
      for (int d = d0; d < d1; ++d) {
        const auto di = static_cast<std::size_t>(d);
        s1[di] = std::max(0.0, 1.0 - x_sum[di] - l1[di] / rho);
        l1[di] += rho * (x_sum[di] + s1[di] - 1.0);
        for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p) {
          const auto ps = static_cast<std::size_t>(p);
          const double f = x[ps] * vol[di];
          for (int zi = z_offset_[ps]; zi < z_offset_[ps + 1]; ++zi) {
            l4[static_cast<std::size_t>(zi)] += rho * (f - z[static_cast<std::size_t>(zi)]);
          }
        }
      }
    });
  }

  res.after = violation(x);
  // ADMM iterates are not exactly feasible for the *demand* constraint; clamp
  // the per-demand sums (cheap and local) but keep capacity handling to the
  // evaluation semantics, as the paper does. Sharded: each demand's clamp and
  // split writeback touch only its own path range.
  a.split.resize(static_cast<std::size_t>(np));
  run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
    for (int d = d0; d < d1; ++d) {
      const auto di = static_cast<std::size_t>(d);
      const bool over = x_sum[di] > 1.0;
      for (int p = pb_.path_begin(d); p < pb_.path_end(d); ++p) {
        const auto ps = static_cast<std::size_t>(p);
        if (over) x[ps] /= x_sum[di];
        a.split[ps] = x[ps];
      }
    }
  });
  return res;
}

}  // namespace teal::core
