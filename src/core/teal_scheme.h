// teal_scheme.h — the deployable Teal pipeline (Figure 3).
//
// solve() = one forward pass of FlowGNN + policy network (the Gaussian mean
// is used directly at deployment, Appendix B), masked softmax into split
// ratios, then 2-5 ADMM fine-tuning iterations. The whole pipeline's flop
// count is independent of the traffic matrix *values* — the property behind
// Teal's tightly clustered computation times in Figure 7a.
//
// Every solve runs through a SolveWorkspace, so repeated solves on the same
// problem are allocation-free, and solve_batch() fans independent matrices
// out across the thread pool with one workspace per worker — the CPU
// equivalent of the paper's GPU batch parallelism. A single solve can in
// turn shard its per-demand stages across the pool (core::ShardPlan, the
// GPU's *intra*-matrix data parallelism), bit-identically to the
// sequential path; solve_batch composes the two axes by a cost model.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/admm.h"
#include "core/coma.h"
#include "core/direct_loss.h"
#include "core/model.h"
#include "core/snapshot.h"
#include "core/solve_workspace.h"
#include "te/scheme.h"
#include "traffic/traffic.h"

namespace teal::core {

struct TealSchemeConfig {
  TealModelConfig model;
  te::Objective objective = te::Objective::kTotalFlow;
  bool use_admm = true;       // §5.5 omits ADMM for the non-default objectives
  int admm_iterations = -1;   // -1 = paper default (2 if <100 nodes else 5)
  double latency_penalty = 0.5;
};

class TealScheme : public te::Scheme {
 public:
  // Takes ownership of a trained model. `pb` must outlive the scheme and be
  // the same Problem object passed to solve() (its path structure is baked
  // into the ADMM index); capacity changes on it are picked up per solve.
  // `name` distinguishes the full pipeline from its Figure 14 ablations.
  TealScheme(const te::Problem& pb, std::unique_ptr<Model> model,
             const TealSchemeConfig& cfg, std::string name = "Teal");

  std::string name() const override { return name_; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  // The primary path: solves into a caller-owned Allocation through the
  // scheme's workspace. Zero heap allocations once the workspace is warm.
  void solve_into(const te::Problem& pb, const te::TrafficMatrix& tm,
                  te::Allocation& out) override;
  // Fans the batch out over ThreadPool::global() with one persistent
  // workspace per worker (each solve sequential within its worker). A
  // single-matrix batch instead runs through solve_into(), where the shard
  // knob fans the solve's demand slices over the otherwise-idle pool — the
  // axis-composition cost model (DESIGN.md "Parallelism model"). Results
  // are identical to a sequential solve() loop either way (workspaces share
  // no mutable state); only the timing differs — see the BatchSolve
  // timing-semantics note in te/scheme.h for how the per-solve seconds
  // relate to last_solve_seconds().
  te::BatchSolve solve_batch(const te::Problem& pb,
                             std::span<const te::TrafficMatrix> tms) override;
  double last_solve_seconds() const override { return last_seconds_; }
  bool has_warm_state() const override { return true; }
  bool supports_parallel_batch() const override { return true; }

  // Intra-solve demand sharding (core::ShardPlan): every per-demand stage —
  // the FlowGNN demand passes, policy-input assembly, policy forward,
  // masked softmax, allocation writeback and the ADMM F-update/dual stages
  // — fans its demand slice out over the thread pool; coupled link-level
  // stages run as per-edge passes and reductions stay sequential, so the
  // allocation is bit-identical for every shard count (tests/shard_test).
  bool supports_demand_sharding() const override { return true; }
  void set_shard_count(int n) override { shard_count_ = n; }
  int shard_count() const override { return shard_count_; }

  // Precision knob (te::Precision): f32 narrows the NN forward to float —
  // through per-layer blocked weight snapshots taken here — while the masked
  // softmax, the allocation writeback and the ADMM fine-tune stay double,
  // mirroring the paper's fp32 GPU inference. bf16 additionally narrows the
  // *stored* weights to bfloat16 (activations and accumulations stay f32).
  // Snapshotting mutates the shared model, so set the precision before
  // replicas/batches start and re-set it after any further training
  // (tests/precision_test.cpp bounds the f32- and bf16-vs-f64 allocation
  // error per topology). Narrowed support follows the wrapped model: the
  // Figure 14 ablation variants have no narrowed forward, and claiming
  // support while silently solving in f64 would corrupt any narrowed-vs-f64
  // comparison run against them.
  bool supports_precision(te::Precision p) const override {
    const ModelSnapshot snap = hub_.acquire();
    if (p == te::Precision::f64) return true;
    if (p == te::Precision::bf16) return snap.model->supports_bf16_forward();
    return snap.model->supports_f32_forward();
  }
  void set_precision(te::Precision p) override {
    if (!supports_precision(p)) return;  // knob contract: unsupported = ignored
    const ModelSnapshot snap = hub_.acquire();
    if (p == te::Precision::f32) snap.model->prepare_f32();
    if (p == te::Precision::bf16) snap.model->prepare_bf16();
    precision_ = p;
  }
  te::Precision precision() const override { return precision_; }

  // Live hot-swap (ModelHub publication seam): installs `m` as the new
  // current model and returns its version. Precision snapshots matching the
  // scheme's current knob are prepared on `m` *before* it becomes visible
  // (mutation-before-visibility), so replicas never observe a model whose
  // narrowed mirrors are mid-construction. Solves already running keep their
  // pinned snapshot and finish bit-identically on the old version; solves
  // that start after this call use `m`. Safe to call from a trainer thread
  // while replicas solve concurrently. Workspace forward caches re-key off
  // ModelForward::owner, so the first post-swap solve per workspace
  // reallocates its cache (monotonic arena growth — see DESIGN.md).
  std::uint64_t publish_model(std::unique_ptr<Model> m);
  std::uint64_t model_version() const { return hub_.version(); }

  // Thread-safe replica entry point for the serving layer: one solve through
  // a caller-owned workspace. Distinct workspaces share no mutable state and
  // the model is read-only at inference, so concurrent calls are safe — this
  // is the same contract solve_batch() relies on, exposed so serve::Server
  // can keep one persistent workspace per replica over a single shared
  // scheme. Does not touch last_solve_seconds(); per-solve time is reported
  // through `seconds_out`. `shard_count` follows the set_shard_count()
  // convention (0 = auto) but defaults to 1: a replica's outer parallelism
  // is across replicas, so its inner solve stays sequential unless the
  // serving cost model (serve::pick_replica_shards) grants it pool threads.
  // After the call `ws.plan` / `ws.shard_stats` hold the executed plan and
  // per-shard load-balance accounting.
  void solve_replica(SolveWorkspace& ws, const te::Problem& pb, const te::TrafficMatrix& tm,
                     te::Allocation& out, double* seconds_out = nullptr,
                     int shard_count = 1) const {
    solve_with(ws, pb, tm, out, seconds_out, shard_count);
  }

  // Current published model. The hub keeps a reference, so the returned
  // reference stays valid until the next publish_model() — callers that need
  // publish-safety should pin a snapshot via model_version()/publish flows
  // instead. Intended for pre-serving setup (training, inspection).
  Model& model() { return *hub_.acquire().model; }
  const Admm& admm() const { return admm_; }

  // Drops all warm buffers (single-solve and batch workspaces). Used by the
  // cold/warm micro-benchmark and tests; never needed in normal operation.
  void reset_workspace();

 private:
  // One solve through an explicit workspace; thread-safe across distinct
  // workspaces. Also records per-solve seconds into `seconds_out` if given.
  // `shard_count` follows the knob convention (0 = auto cost model).
  void solve_with(SolveWorkspace& ws, const te::Problem& pb, const te::TrafficMatrix& tm,
                  te::Allocation& out, double* seconds_out, int shard_count) const;

  // Resolves a shard-count request against the problem and the calling
  // thread's available parallelism.
  ShardPlan plan_shards(const te::Problem& pb, int shard_count) const;

  // Publication seam between a (background) trainer and this scheme's
  // replicas: solve_with pins one snapshot per solve; publish_model swaps in
  // a new version without disturbing in-flight solves.
  ModelHub hub_;
  TealSchemeConfig cfg_;
  Admm admm_;
  std::string name_;
  double last_seconds_ = 0.0;
  int shard_count_ = 0;                 // 0 = auto (see set_shard_count)
  te::Precision precision_ = te::Precision::f64;
  // Backs ws_ (bound around solve_into); declared before it so teardown
  // destroys the workspace while its memory is still mapped. The batch
  // workspaces stay heap-backed — they warm concurrently on pool threads,
  // where a single arena would race.
  util::Arena arena_;
  SolveWorkspace ws_;                   // solve()/solve_into() workspace
  std::vector<SolveWorkspace> batch_ws_;  // one per batch worker, lazily grown
};

// How to train the model inside make_teal_scheme.
enum class Trainer { kComaStar, kDirectLoss };

struct TealTrainOptions {
  Trainer trainer = Trainer::kComaStar;
  ComaConfig coma;
  DirectLossConfig direct;
  // If non-empty, load the model from this file when present (and save after
  // training otherwise) — trained models are reused across bench runs.
  std::string cache_path;
  // Training parallelism knobs applied to whichever trainer runs (mirroring
  // how sim::OnlineConfig carries the solve-side knobs): when >= 0 they
  // override the per-trainer `workers` (0 = auto) and when > 0 the
  // per-trainer `rollout_batch`. -1 / 0 leave the trainer configs untouched.
  // `workers` is pure throughput (bit-identical parameters for every value);
  // `rollout_batch` changes optimizer-step granularity — see
  // core::TrainContext.
  int workers = -1;
  int rollout_batch = 0;
};

// Trains `model` with the selected trainer, or loads it from opts.cache_path
// when the cache file exists (saving after training otherwise).
void train_or_load_model(Model& model, const te::Problem& pb, const traffic::Trace& train,
                         te::Objective objective, const TealTrainOptions& opts);

// Builds, trains (or loads) and wraps a Teal model for the given problem.
std::unique_ptr<TealScheme> make_teal_scheme(const te::Problem& pb,
                                             const traffic::Trace& train,
                                             const TealSchemeConfig& cfg,
                                             const TealTrainOptions& opts = {});

}  // namespace teal::core
