// teal_scheme.h — the deployable Teal pipeline (Figure 3).
//
// solve() = one forward pass of FlowGNN + policy network (the Gaussian mean
// is used directly at deployment, Appendix B), masked softmax into split
// ratios, then 2-5 ADMM fine-tuning iterations. The whole pipeline's flop
// count is independent of the traffic matrix *values* — the property behind
// Teal's tightly clustered computation times in Figure 7a.
#pragma once

#include <optional>
#include <string>

#include "core/admm.h"
#include "core/coma.h"
#include "core/direct_loss.h"
#include "core/model.h"
#include "te/scheme.h"
#include "traffic/traffic.h"

namespace teal::core {

struct TealSchemeConfig {
  TealModelConfig model;
  te::Objective objective = te::Objective::kTotalFlow;
  bool use_admm = true;       // §5.5 omits ADMM for the non-default objectives
  int admm_iterations = -1;   // -1 = paper default (2 if <100 nodes else 5)
  double latency_penalty = 0.5;
};

class TealScheme : public te::Scheme {
 public:
  // Takes ownership of a trained model. `pb` must outlive the scheme and be
  // the same Problem object passed to solve() (its path structure is baked
  // into the ADMM index); capacity changes on it are picked up per solve.
  // `name` distinguishes the full pipeline from its Figure 14 ablations.
  TealScheme(const te::Problem& pb, std::unique_ptr<Model> model,
             const TealSchemeConfig& cfg, std::string name = "Teal");

  std::string name() const override { return name_; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

  Model& model() { return *model_; }
  const Admm& admm() const { return admm_; }

 private:
  std::unique_ptr<Model> model_;
  TealSchemeConfig cfg_;
  Admm admm_;
  std::string name_;
  double last_seconds_ = 0.0;
};

// How to train the model inside make_teal_scheme.
enum class Trainer { kComaStar, kDirectLoss };

struct TealTrainOptions {
  Trainer trainer = Trainer::kComaStar;
  ComaConfig coma;
  DirectLossConfig direct;
  // If non-empty, load the model from this file when present (and save after
  // training otherwise) — trained models are reused across bench runs.
  std::string cache_path;
};

// Trains `model` with the selected trainer, or loads it from opts.cache_path
// when the cache file exists (saving after training otherwise).
void train_or_load_model(Model& model, const te::Problem& pb, const traffic::Trace& train,
                         te::Objective objective, const TealTrainOptions& opts);

// Builds, trains (or loads) and wraps a Teal model for the given problem.
std::unique_ptr<TealScheme> make_teal_scheme(const te::Problem& pb,
                                             const traffic::Trace& train,
                                             const TealSchemeConfig& cfg,
                                             const TealTrainOptions& opts = {});

}  // namespace teal::core
