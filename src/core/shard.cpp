#include "core/shard.h"

#include <stdexcept>
#include <string>

namespace teal::core {

ShardPlan ShardPlan::make(int n_items, int n_shards) {
  ShardPlan p;
  p.n_items = std::max(0, n_items);
  if (p.n_items == 0) {
    p.n_shards = 1;
    p.chunk = 0;
    return p;
  }
  const int target = std::clamp(n_shards, 1, p.n_items);
  const util::ChunkPlan cp = util::chunk_plan(static_cast<std::size_t>(p.n_items),
                                              static_cast<std::size_t>(target));
  p.chunk = static_cast<int>(cp.chunk);
  p.n_shards = static_cast<int>(cp.n_chunks);
  return p;
}

int auto_shard_count(int n_demands, int total_paths, std::size_t available_threads) {
  // Negative counts are the int-overflow signature of an uncapped generated
  // problem (te::Problem guards its own id space, but callers may pass raw
  // sizes). Mis-costing silently would disable or misshape sharding exactly
  // on the largest problems, where it matters most — fail loudly instead.
  if (n_demands < 0 || total_paths < 0) {
    throw std::invalid_argument(
        "auto_shard_count: negative n_demands/total_paths (" +
        std::to_string(n_demands) + ", " + std::to_string(total_paths) +
        ") — int overflow in the caller's problem sizing");
  }
  if (available_threads <= 1 || n_demands <= 1) return 1;
  // Each sharded stage pays one fork-join barrier (~µs); per-path arithmetic
  // is the work unit that must amortize it. 256 paths/shard keeps the
  // barrier under ~5% of a stage on the small bundled topologies and is
  // negligible at ASN scale (tens of thousands of paths).
  constexpr int kMinPathsPerShard = 256;
  const int by_work = std::max(1, total_paths / kMinPathsPerShard);
  const int cap = static_cast<int>(std::min<std::size_t>(
      available_threads, static_cast<std::size_t>(n_demands)));
  return std::clamp(by_work, 1, cap);
}

int auto_shard_count(int n_demands, int total_paths) {
  return auto_shard_count(n_demands, total_paths,
                          util::ThreadPool::available_parallelism());
}

}  // namespace teal::core
