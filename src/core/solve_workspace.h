// solve_workspace.h — per-solve scratch state for the deployable pipeline.
//
// The paper's Figure 7 result rests on the inference pass having a fixed,
// traffic-independent compute shape. A SolveWorkspace makes the *memory*
// shape equally fixed: it owns every buffer a TealScheme::solve() touches —
// the capacity snapshot, the model's forward caches, the softmax splits and
// the ADMM primal/dual state — so repeated solves on the same problem
// allocate nothing after the first call (verified by the allocation-counting
// tests and the cold/warm micro-benchmark).
//
// Workspaces share no mutable state with each other or with the scheme's
// read-only model, so independent traffic matrices can be solved
// concurrently, one workspace per worker — the interface-level
// commutativity that lets solve_batch() scale across the thread pool.
//
// Cold-start contract (DESIGN.md "Memory model"): the workspace's buffers
// are arena-aware. Warming a fresh SolveWorkspace on a thread holding a
// util::ArenaScope bump-allocates everything — the model forward caches, the
// splits, the ADMM state, the shard slots — out of the bound arena, so
// replica spin-up costs O(1) heap allocations (<= 5, alloc-hook-verified in
// tests/workspace_test.cpp) and teardown is clear() + Arena::reset(). The
// one plain-heap member is `caps`, which crosses the capacities interfaces
// as a std::vector pointer. Binding is the *owner's* job (serve replicas and
// TrainContext bind their own arenas); an unbound workspace behaves exactly
// as before, entirely heap-backed.
#pragma once

#include <vector>

#include "core/admm.h"
#include "core/model.h"
#include "core/shard.h"

namespace teal::core {

struct SolveWorkspace {
  std::vector<double> caps;  // capacity snapshot for this solve
  ModelForward fwd;          // f64 model forward caches (owner-tagged)
  // Float mirror of the forward caches for the narrowed solves — both
  // Precision::f32 and Precision::bf16, which share it (bf16 narrows only
  // the model-side stored weights; its activations are the same f32
  // buffers). Its cache holds the model's f32 activations
  // (TealModel::ForwardF32) while its logits/mask members are the double
  // widenings the rest of the pipeline consumes. Only the precision actually
  // used grows warm buffers, so an f64-only workspace pays nothing for the
  // mirror.
  ModelForward fwd32;
  nn::Mat splits;            // (D, k) masked-softmax split ratios
  Admm::Workspace admm;      // ADMM primal/dual state

  // Intra-solve demand sharding state: the plan the last solve ran with and
  // one cache-line-aligned accounting slot per shard (busy seconds / stage
  // counts — the load-balance telemetry bench_shard_scaling reports).
  // Shards write only their own slot, so they never false-share; everything
  // else they touch is disjoint *rows* of the matrices above.
  ShardPlan plan;
  util::AVec<ShardStat> shard_stats;

  // Sizes and zeroes the per-shard scratch for a solve under `p`. Reuses the
  // vector's capacity, so warm solves with a stable plan allocate nothing.
  void prepare_shards(const ShardPlan& p) {
    plan = p;
    if (shard_stats.size() < static_cast<std::size_t>(p.n_shards)) {
      shard_stats.resize(static_cast<std::size_t>(p.n_shards));
    }
    for (auto& s : shard_stats) s.reset();
  }

  void clear() { *this = SolveWorkspace{}; }
};

}  // namespace teal::core
