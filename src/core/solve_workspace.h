// solve_workspace.h — per-solve scratch state for the deployable pipeline.
//
// The paper's Figure 7 result rests on the inference pass having a fixed,
// traffic-independent compute shape. A SolveWorkspace makes the *memory*
// shape equally fixed: it owns every buffer a TealScheme::solve() touches —
// the capacity snapshot, the model's forward caches, the softmax splits and
// the ADMM primal/dual state — so repeated solves on the same problem
// allocate nothing after the first call (verified by the allocation-counting
// tests and the cold/warm micro-benchmark).
//
// Workspaces share no mutable state with each other or with the scheme's
// read-only model, so independent traffic matrices can be solved
// concurrently, one workspace per worker — the interface-level
// commutativity that lets solve_batch() scale across the thread pool.
#pragma once

#include <vector>

#include "core/admm.h"
#include "core/model.h"

namespace teal::core {

struct SolveWorkspace {
  std::vector<double> caps;  // capacity snapshot for this solve
  ModelForward fwd;          // model forward caches (owner-tagged)
  nn::Mat splits;            // (D, k) masked-softmax split ratios
  Admm::Workspace admm;      // ADMM primal/dual state

  void clear() { *this = SolveWorkspace{}; }
};

}  // namespace teal::core
