// shard.h — intra-solve demand sharding (the third parallelism axis).
//
// Teal's compute decomposes *per demand*: the FlowGNN DNN layer, the policy
// network, the masked softmax and the ADMM F-update all operate on one demand
// (or its contiguous path range) at a time — the property that makes the
// paper's pipeline GPU-friendly. solve_batch exploits parallelism only
// *across* traffic matrices; a ShardPlan exploits it *within* one solve by
// splitting the demand index space into contiguous ranges, one per shard,
// fanned out over the thread pool. Sharding cuts the latency of a single
// huge solve, which batching by construction cannot.
//
// Bit-identity contract: every sharded stage writes disjoint rows whose
// values depend only on read-only inputs, and every cross-demand reduction
// (mean capacity, ADMM residuals, per-edge load) runs sequentially on the
// calling thread — so the allocation is byte-identical for every shard
// count, including 1 (verified by tests/shard_test.cpp). The shard count is
// purely a latency knob.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal::core {

// Contiguous division of the demand index space [0, n_items) into at most
// n_shards non-empty ranges; shard s covers [begin(s), end(s)). Demands map
// to contiguous global path ranges (te::Problem), so a demand shard is also
// a path-row shard.
struct ShardPlan {
  int n_items = 0;
  int n_shards = 1;
  int chunk = 0;  // items per shard (ceil division)

  // Clamps n_shards into [1, max(1, n_items)] and drops empty trailing
  // shards (delegates to util::chunk_plan, so shard boundaries follow the
  // pool's own chunking policy).
  static ShardPlan make(int n_items, int n_shards);
  static ShardPlan sequential(int n_items) { return make(n_items, 1); }

  int begin(int s) const { return std::min(n_items, s * chunk); }
  int end(int s) const { return std::min(n_items, (s + 1) * chunk); }
  bool sharded() const { return n_shards > 1; }

  bool operator==(const ShardPlan& o) const {
    return n_items == o.n_items && n_shards == o.n_shards && chunk == o.chunk;
  }
};

// Per-shard accounting, cache-line aligned so concurrent shards never
// false-share while updating their own entry. Lives in SolveWorkspace
// (one entry per shard) and feeds the load-balance columns of
// bench_shard_scaling.
struct alignas(64) ShardStat {
  double busy_seconds = 0.0;  // time this shard spent inside sharded stages
  std::uint64_t stages = 0;   // sharded stages this shard executed

  void reset() { *this = ShardStat{}; }
};

// Cost model for the auto shard count (the 0 value of the te::Scheme shard
// knob): a shard must carry enough per-demand work — measured in paths, the
// unit the hot loops iterate — to amortize the fork-join barrier each
// sharded stage pays, and there is no point exceeding the threads actually
// available to a new fork-join region from this thread
// (util::ThreadPool::available_parallelism(), which is 1 when the caller
// already holds a pool slot — so nested auto-sharded solves degrade to
// sequential instead of oversubscribing). Negative inputs — the overflow
// signature of an uncapped generated problem — throw std::invalid_argument
// instead of silently mis-costing.
int auto_shard_count(int n_demands, int total_paths, std::size_t available_threads);

// Convenience: cost model against the calling thread's current context.
int auto_shard_count(int n_demands, int total_paths);

// Runs `fn(shard, item_begin, item_end)` for every shard of `plan`, fanned
// out over the global thread pool (inline when the plan is sequential or the
// caller already holds a pool slot). Blocks until every shard completed.
// When `stats` is non-null it must have plan.n_shards entries; each shard
// accumulates its wall time and stage count into its own cache line.
template <typename Fn>
void run_sharded(const ShardPlan& plan, ShardStat* stats, Fn&& fn) {
  auto run_one = [&](int s) {
    if (stats != nullptr) {
      util::Timer t;
      fn(s, plan.begin(s), plan.end(s));
      stats[s].busy_seconds += t.seconds();
      ++stats[s].stages;
    } else {
      fn(s, plan.begin(s), plan.end(s));
    }
  };
  if (!plan.sharded()) {
    run_one(0);
    return;
  }
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(plan.n_shards), [&](std::size_t b, std::size_t e) {
        for (std::size_t s = b; s < e; ++s) run_one(static_cast<int>(s));
      });
}

}  // namespace teal::core
