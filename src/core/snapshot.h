// snapshot.h — versioned model snapshots, the train→serve publication seam.
//
// The paper's online setting implies a loop: a background trainer keeps
// improving the model while replicas keep serving it. The two sides must
// never share mutable weights — a replica reading a half-written parameter
// matrix would produce an allocation that matches *no* model version. The
// seam that keeps them apart is immutability plus versioning:
//
//   trainer ── publish(model) ──► ModelHub ── acquire() ──► replica solve
//                (new version)     (current     (pins one version for the
//                                   snapshot)    whole solve)
//
// A ModelSnapshot is an immutable published version: once inside the hub,
// nobody mutates the model again (training always happens on a *different*
// instance; precision weight snapshots are taken before publication). A
// replica pins the current snapshot at solve start and runs the entire
// forward + fine-tune against it, so a publish that lands mid-solve changes
// nothing for that solve — it finishes bit-identically on the old version,
// which stays alive until the last in-flight solve drops its reference
// (shared_ptr). Solves admitted after the publish see the new version.
//
// Scalability: acquire() is a shared_ptr copy under a mutex held for a few
// instructions — replicas touch no common mutable state besides that pointer,
// so the hub never becomes the serialization point a global model lock would
// be (the scalable-commutativity design rule: per-replica state commutes;
// the registry is read-mostly).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/model.h"

namespace teal::core {

// One immutable published model version. `model` is read-only from the
// moment it enters a ModelHub: inference calls only const methods, and every
// mutation (training, precision snapshotting) must happen before publish.
struct ModelSnapshot {
  std::shared_ptr<Model> model;
  std::uint64_t version = 0;
};

// The publication point between one trainer and many replicas. publish()
// installs a new snapshot and bumps the version counter; acquire() hands out
// the current snapshot. Both are safe from any thread, any time.
class ModelHub {
 public:
  // The initial model becomes version 1 (version 0 = "never published",
  // reserved so staleness checks can use 0 as a sentinel).
  explicit ModelHub(std::shared_ptr<Model> initial);

  ModelHub(const ModelHub&) = delete;
  ModelHub& operator=(const ModelHub&) = delete;

  // Pins the current version: the returned snapshot (and the model behind
  // it) stays valid for as long as the caller holds it, regardless of how
  // many publishes happen meanwhile. Replicas call this once per solve.
  ModelSnapshot acquire() const;

  // Atomically replaces the current snapshot; returns the new version.
  // `m` must not be mutated after this call (it is now visible to replicas).
  std::uint64_t publish(std::shared_ptr<Model> m);

  std::uint64_t version() const;

 private:
  mutable std::mutex mu_;
  ModelSnapshot cur_;  // guarded by mu_
};

}  // namespace teal::core
