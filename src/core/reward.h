// reward.h — the TE "environment" used to train Teal with multi-agent RL.
//
// COMA* (Appendix B) needs, for every agent i (= demand), the advantage
//   A_i = R(s, a) - E_{a'_i ~ pi}[ R(s, (a_-i, a'_i)) ]:
// the global reward of the joint action minus a counterfactual baseline where
// only agent i resamples its action. Both terms share everything except
// demand i's contribution, so only the *difference* of i-local terms matters.
// RewardSimulator exploits this: it fixes the joint edge loads once per step,
// and evaluates candidate actions of one demand with an edge-local estimate:
//
//   value_i(a'_i) = sum over i's paths of f'_p * min_{e in p} factor'(e)
//                 + sum over touched edges of others'(e) * factor'(e)
//
// where factor'(e) = min(1, c_e / load'_e) with load' = joint load with i's
// contribution replaced, and others'(e) is the intended volume of all other
// flows on e. The second term charges agent i for the traffic it squeezes
// out of shared links — the counterfactual contribution COMA estimates. The
// exact global objective (used as the *reported* reward and for evaluation)
// is computed by the te::objective functions.
//
// Thread safety: value_of() is const and uses caller-provided scratch, so the
// trainer evaluates all demands' counterfactuals in parallel.
#pragma once

#include <vector>

#include "nn/mat.h"
#include "te/objective.h"
#include "te/problem.h"

namespace teal::core {

class RewardSimulator {
 public:
  RewardSimulator(const te::Problem& pb, te::Objective obj, double latency_penalty = 0.5);

  // Fixes the per-interval inputs and the joint action (a (D, k) split
  // matrix). Recomputes joint loads. Allocation-free once warm (all scratch
  // lives in member buffers), so the batched trainer can call it every
  // rollout without breaking the zero-alloc training-step contract.
  void set_state(const te::TrafficMatrix& tm, const std::vector<double>& capacities,
                 const nn::Mat& splits);

  // Per-thread scratch for value_of.
  struct Scratch {
    std::vector<double> edge_load_delta;  // sized num_edges, zero outside calls
    std::vector<int> touched;             // touched edge ids
  };
  Scratch make_scratch() const;

  // Edge-local value of demand d taking candidate splits (k doubles; entries
  // beyond the demand's path count are ignored). Comparable across candidates
  // of the same demand within one set_state().
  double value_of(int d, const double* candidate, Scratch& scratch) const;

  // Exact global objective of the current joint action.
  double global_reward() const;

  const te::Problem& problem() const { return pb_; }

 private:
  const te::Problem& pb_;
  te::Objective obj_;
  double latency_penalty_;
  std::vector<double> path_weight_;  // latency weights (1.0 for total flow)

  const te::TrafficMatrix* tm_ = nullptr;
  std::vector<double> caps_;
  nn::Mat splits_;
  te::Allocation alloc_;        // joint action as a flat allocation (reused)
  std::vector<double> load_;    // joint intended load per edge
  std::vector<double> factor_;  // per-edge survival factors (reused)
  double global_reward_ = 0.0;
};

}  // namespace teal::core
