#include "core/flow_gnn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.h"

namespace teal::core {

namespace {

// Column-wise concat [a | b] -> out.
void concat_cols(const nn::Mat& a, const nn::Mat& b, nn::Mat& out) {
  out.resize(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    std::copy(a.row_ptr(r), a.row_ptr(r) + a.cols(), out.row_ptr(r));
    std::copy(b.row_ptr(r), b.row_ptr(r) + b.cols(), out.row_ptr(r) + a.cols());
  }
}

}  // namespace

FlowGnn::FlowGnn(const FlowGnnConfig& cfg, int k_paths, util::Rng& rng)
    : cfg_(cfg), k_paths_(k_paths) {
  if (cfg.n_blocks < 1) throw std::invalid_argument("FlowGnn: n_blocks < 1");
  if (k_paths < 1) throw std::invalid_argument("FlowGnn: k_paths < 1");
  // Working dims interpolate from 1 to the final dimension; with the default
  // final_dim == n_blocks this is exactly the paper's +1-per-layer widening.
  const int final_dim = effective_final_dim(cfg);
  dims_.resize(static_cast<std::size_t>(cfg.n_blocks));
  for (int l = 0; l < cfg.n_blocks; ++l) {
    dims_[static_cast<std::size_t>(l)] =
        cfg.n_blocks == 1
            ? final_dim
            : 1 + static_cast<int>(std::lround(static_cast<double>(l) *
                                               (final_dim - 1) / (cfg.n_blocks - 1)));
  }
  for (int l = 0; l < cfg.n_blocks; ++l) {
    const int d = dims_[static_cast<std::size_t>(l)];
    edge_linear_.emplace_back(2 * d, d, rng);
    path_linear_.emplace_back(2 * d, d, rng);
    dnn_linear_.emplace_back(k_paths * d, k_paths * d, rng);
  }
}

namespace {
// Widens `m` to `target` columns by appending copies of the 1-dim init
// feature (§4's expressiveness technique). `out` must not alias `m`.
void widen_into(const nn::Mat& m, const nn::Mat& feat0, int target, nn::Mat& out) {
  out.resize(m.rows(), target);
  for (int r = 0; r < m.rows(); ++r) {
    std::copy(m.row_ptr(r), m.row_ptr(r) + m.cols(), out.row_ptr(r));
    for (int c = m.cols(); c < target; ++c) out.at(r, c) = feat0.at(r, 0);
  }
}
}  // namespace

void FlowGnn::aggregate_paths_to_edges(const te::Problem& pb, const nn::Mat& paths,
                                       nn::Mat& agg) const {
  const int ne = pb.graph().num_edges();
  const int d = paths.cols();
  agg.resize(ne, d);
  agg.zero();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(ne), [&](std::size_t b, std::size_t e) {
        for (std::size_t ei = b; ei < e; ++ei) {
          const auto& ps = pb.paths_on_edge(static_cast<topo::EdgeId>(ei));
          if (ps.empty()) continue;
          double* out = agg.row_ptr(static_cast<int>(ei));
          for (int p : ps) {
            const double* pr = paths.row_ptr(p);
            for (int c = 0; c < d; ++c) out[c] += pr[c];
          }
          const double inv = 1.0 / static_cast<double>(ps.size());
          for (int c = 0; c < d; ++c) out[c] *= inv;
        }
      });
}

void FlowGnn::aggregate_edges_to_paths(const te::Problem& pb, const nn::Mat& edges,
                                       nn::Mat& agg) const {
  const int np = pb.total_paths();
  const int d = edges.cols();
  agg.resize(np, d);
  agg.zero();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(np), [&](std::size_t b, std::size_t e) {
        for (std::size_t pi = b; pi < e; ++pi) {
          const auto& es = pb.path_edges(static_cast<int>(pi));
          if (es.empty()) continue;
          double* out = agg.row_ptr(static_cast<int>(pi));
          for (topo::EdgeId ei : es) {
            const double* er = edges.row_ptr(ei);
            for (int c = 0; c < d; ++c) out[c] += er[c];
          }
          const double inv = 1.0 / static_cast<double>(es.size());
          for (int c = 0; c < d; ++c) out[c] *= inv;
        }
      });
}

void FlowGnn::scatter_grad_edges_from_paths(const te::Problem& pb, const nn::Mat& g_agg,
                                            nn::Mat& g_paths) const {
  // Transpose of aggregate_paths_to_edges: each path on edge e receives
  // g_agg(e) / |paths_on_edge(e)|. Parallelized over paths (gather form) to
  // stay race-free.
  const int np = pb.total_paths();
  const int d = g_agg.cols();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(np), [&](std::size_t b, std::size_t e) {
        for (std::size_t pi = b; pi < e; ++pi) {
          double* out = g_paths.row_ptr(static_cast<int>(pi));
          for (topo::EdgeId ei : pb.path_edges(static_cast<int>(pi))) {
            const auto cnt = static_cast<double>(pb.paths_on_edge(ei).size());
            const double* gr = g_agg.row_ptr(ei);
            for (int c = 0; c < d; ++c) out[c] += gr[c] / cnt;
          }
        }
      });
}

void FlowGnn::scatter_grad_paths_from_edges(const te::Problem& pb, const nn::Mat& g_agg,
                                            nn::Mat& g_edges) const {
  const int ne = pb.graph().num_edges();
  const int d = g_agg.cols();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(ne), [&](std::size_t b, std::size_t e) {
        for (std::size_t ei = b; ei < e; ++ei) {
          double* out = g_edges.row_ptr(static_cast<int>(ei));
          // Gather from each path traversing this edge: that path's agg
          // divided by the path's own edge count.
          for (int p : pb.paths_on_edge(static_cast<topo::EdgeId>(ei))) {
            const auto cnt = static_cast<double>(pb.path_edges(p).size());
            const double* gr = g_agg.row_ptr(p);
            for (int c = 0; c < d; ++c) out[c] += gr[c] / cnt;
          }
        }
      });
}

void FlowGnn::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                      const std::vector<double>* capacities, Forward& fwd) const {
  const int ne = pb.graph().num_edges();
  const int np = pb.total_paths();
  const int nd = pb.num_demands();
  const int k = k_paths_;

  fwd.blocks.resize(static_cast<std::size_t>(cfg_.n_blocks));

  // Initial 1-dim features, normalized by the mean link capacity so both
  // entities live on comparable scales (§3.2).
  if (capacities == nullptr) {
    pb.capacities_into(fwd.caps);
    capacities = &fwd.caps;
  }
  const std::vector<double>& caps = *capacities;
  double mean_cap = 1e-9;
  for (double c : caps) mean_cap += c;
  mean_cap /= std::max<std::size_t>(1, caps.size());
  fwd.edge_feat0.resize(ne, 1);
  for (int e = 0; e < ne; ++e) fwd.edge_feat0.at(e, 0) = caps[static_cast<std::size_t>(e)] / mean_cap;
  fwd.path_feat0.resize(np, 1);
  for (int p = 0; p < np; ++p) {
    fwd.path_feat0.at(p, 0) =
        tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))] / mean_cap;
  }

  widen_into(fwd.edge_feat0, fwd.edge_feat0, dims_[0], fwd.blocks[0].edge_in);
  widen_into(fwd.path_feat0, fwd.path_feat0, dims_[0], fwd.blocks[0].path_in);

  for (int l = 0; l < cfg_.n_blocks; ++l) {
    auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
    const int d = dims_[static_cast<std::size_t>(l)];

    // --- GNN layer: synchronous bipartite message passing.
    aggregate_paths_to_edges(pb, blk.path_in, fwd.agg_e);
    aggregate_edges_to_paths(pb, blk.edge_in, fwd.agg_p);
    concat_cols(blk.edge_in, fwd.agg_e, blk.edge_cat);
    concat_cols(blk.path_in, fwd.agg_p, blk.path_cat);
    edge_linear_[static_cast<std::size_t>(l)].forward(blk.edge_cat, blk.edge_pre);
    path_linear_[static_cast<std::size_t>(l)].forward(blk.path_cat, blk.path_pre);
    nn::leaky_relu_forward(blk.edge_pre, blk.edge_act, cfg_.leaky_alpha);
    nn::leaky_relu_forward(blk.path_pre, blk.path_act, cfg_.leaky_alpha);

    // --- DNN layer: coordinate the k paths of each demand. Demands with
    // fewer than k paths keep zero padding in their trailing slots.
    blk.dnn_in.resize(nd, k * d);
    blk.dnn_in.zero();
    for (int dem = 0; dem < nd; ++dem) {
      double* row = blk.dnn_in.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(blk.path_act.row_ptr(p), blk.path_act.row_ptr(p) + d, row + slot * d);
      }
    }
    dnn_linear_[static_cast<std::size_t>(l)].forward(blk.dnn_in, blk.dnn_pre);
    nn::leaky_relu_forward(blk.dnn_pre, fwd.dnn_act, cfg_.leaky_alpha);
    blk.path_out.resize(np, d);
    for (int dem = 0; dem < nd; ++dem) {
      const double* row = fwd.dnn_act.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(row + slot * d, row + (slot + 1) * d, blk.path_out.row_ptr(p));
      }
    }

    // --- Widen toward the next block's dimension, refilled with the
    // initialization value (§4). Written straight into the next block's
    // inputs so every buffer stays put across repeated forward passes.
    if (l + 1 < cfg_.n_blocks) {
      const int next = dims_[static_cast<std::size_t>(l) + 1];
      auto& nxt = fwd.blocks[static_cast<std::size_t>(l) + 1];
      widen_into(blk.edge_act, fwd.edge_feat0, next, nxt.edge_in);
      widen_into(blk.path_out, fwd.path_feat0, next, nxt.path_in);
    } else {
      fwd.final_paths = blk.path_out;
    }
  }
}

FlowGnn::Forward FlowGnn::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const std::vector<double>* capacities) const {
  Forward fwd;
  forward(pb, tm, capacities, fwd);
  return fwd;
}

void FlowGnn::backward(const te::Problem& pb, const Forward& fwd,
                       const nn::Mat& grad_final_paths) {
  const int ne = pb.graph().num_edges();
  const int np = pb.total_paths();
  const int nd = pb.num_demands();
  const int k = k_paths_;

  nn::Mat g_path_out = grad_final_paths;            // d(loss)/d(block path_out)
  nn::Mat g_edge_out(ne, dims_.back());             // last block's edge output unused

  for (int l = cfg_.n_blocks - 1; l >= 0; --l) {
    const auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
    const int d = dims_[static_cast<std::size_t>(l)];

    // --- DNN layer backward.
    nn::Mat g_dnn_act(nd, k * d);
    for (int dem = 0; dem < nd; ++dem) {
      double* row = g_dnn_act.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(g_path_out.row_ptr(p), g_path_out.row_ptr(p) + d, row + slot * d);
      }
    }
    nn::Mat g_dnn_pre, g_dnn_in;
    nn::leaky_relu_backward(blk.dnn_pre, g_dnn_act, g_dnn_pre, cfg_.leaky_alpha);
    dnn_linear_[static_cast<std::size_t>(l)].backward(blk.dnn_in, g_dnn_pre, g_dnn_in);
    nn::Mat g_path_act(np, d);
    for (int dem = 0; dem < nd; ++dem) {
      const double* row = g_dnn_in.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(row + slot * d, row + (slot + 1) * d, g_path_act.row_ptr(p));
      }
    }

    // --- GNN layer backward (edge and path updates are independent given the
    // block inputs, because message passing is synchronous).
    nn::Mat g_path_pre, g_path_cat;
    nn::leaky_relu_backward(blk.path_pre, g_path_act, g_path_pre, cfg_.leaky_alpha);
    path_linear_[static_cast<std::size_t>(l)].backward(blk.path_cat, g_path_pre, g_path_cat);

    nn::Mat g_edge_pre, g_edge_cat;
    nn::leaky_relu_backward(blk.edge_pre, g_edge_out, g_edge_pre, cfg_.leaky_alpha);
    edge_linear_[static_cast<std::size_t>(l)].backward(blk.edge_cat, g_edge_pre, g_edge_cat);

    // Split the concat grads: [self | agg].
    nn::Mat g_path_in(np, d), g_edge_in(ne, d);
    nn::Mat g_agg_edges(np, d);  // grad of aggregate_edges_to_paths output
    for (int p = 0; p < np; ++p) {
      const double* src = g_path_cat.row_ptr(p);
      std::copy(src, src + d, g_path_in.row_ptr(p));
      std::copy(src + d, src + 2 * d, g_agg_edges.row_ptr(p));
    }
    nn::Mat g_agg_paths(ne, d);  // grad of aggregate_paths_to_edges output
    for (int e = 0; e < ne; ++e) {
      const double* src = g_edge_cat.row_ptr(e);
      std::copy(src, src + d, g_edge_in.row_ptr(e));
      std::copy(src + d, src + 2 * d, g_agg_paths.row_ptr(e));
    }
    // Aggregation transposes.
    scatter_grad_paths_from_edges(pb, g_agg_edges, g_edge_in);
    scatter_grad_edges_from_paths(pb, g_agg_paths, g_path_in);

    // --- Widening backward: the previous block's outputs are the leading
    // columns of this block's inputs (appended init columns are constants).
    if (l > 0) {
      const int prev = dims_[static_cast<std::size_t>(l) - 1];
      g_path_out = nn::Mat(np, prev);
      for (int p = 0; p < np; ++p) {
        std::copy(g_path_in.row_ptr(p), g_path_in.row_ptr(p) + prev, g_path_out.row_ptr(p));
      }
      g_edge_out = nn::Mat(ne, prev);
      for (int e = 0; e < ne; ++e) {
        std::copy(g_edge_in.row_ptr(e), g_edge_in.row_ptr(e) + prev, g_edge_out.row_ptr(e));
      }
    }
  }
}

std::vector<nn::Param*> FlowGnn::params() {
  std::vector<nn::Param*> ps;
  for (auto& l : edge_linear_) {
    for (auto* p : l.params()) ps.push_back(p);
  }
  for (auto& l : path_linear_) {
    for (auto* p : l.params()) ps.push_back(p);
  }
  for (auto& l : dnn_linear_) {
    for (auto* p : l.params()) ps.push_back(p);
  }
  return ps;
}

}  // namespace teal::core
