#include "core/flow_gnn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.h"

namespace teal::core {

FlowGnn::FlowGnn(const FlowGnnConfig& cfg, int k_paths, util::Rng& rng)
    : cfg_(cfg), k_paths_(k_paths) {
  if (cfg.n_blocks < 1) throw std::invalid_argument("FlowGnn: n_blocks < 1");
  if (k_paths < 1) throw std::invalid_argument("FlowGnn: k_paths < 1");
  // Working dims interpolate from 1 to the final dimension; with the default
  // final_dim == n_blocks this is exactly the paper's +1-per-layer widening.
  const int final_dim = effective_final_dim(cfg);
  dims_.resize(static_cast<std::size_t>(cfg.n_blocks));
  for (int l = 0; l < cfg.n_blocks; ++l) {
    dims_[static_cast<std::size_t>(l)] =
        cfg.n_blocks == 1
            ? final_dim
            : 1 + static_cast<int>(std::lround(static_cast<double>(l) *
                                               (final_dim - 1) / (cfg.n_blocks - 1)));
  }
  for (int l = 0; l < cfg.n_blocks; ++l) {
    const int d = dims_[static_cast<std::size_t>(l)];
    edge_linear_.emplace_back(2 * d, d, rng);
    path_linear_.emplace_back(2 * d, d, rng);
    dnn_linear_.emplace_back(k_paths * d, k_paths * d, rng);
  }
}

void FlowGnn::prepare_f32() {
  edge_f32_.clear();
  path_f32_.clear();
  dnn_f32_.clear();
  edge_f32_.reserve(edge_linear_.size());
  path_f32_.reserve(path_linear_.size());
  dnn_f32_.reserve(dnn_linear_.size());
  for (const auto& l : edge_linear_) edge_f32_.push_back(l.snapshot_packed_f32());
  for (const auto& l : path_linear_) path_f32_.push_back(l.snapshot_packed_f32());
  for (const auto& l : dnn_linear_) dnn_f32_.push_back(l.snapshot_packed_f32());
}

void FlowGnn::prepare_bf16() {
  edge_bf16_.clear();
  path_bf16_.clear();
  dnn_bf16_.clear();
  edge_bf16_.reserve(edge_linear_.size());
  path_bf16_.reserve(path_linear_.size());
  dnn_bf16_.reserve(dnn_linear_.size());
  for (const auto& l : edge_linear_) edge_bf16_.push_back(l.snapshot_bf16());
  for (const auto& l : path_linear_) path_bf16_.push_back(l.snapshot_bf16());
  for (const auto& l : dnn_linear_) dnn_bf16_.push_back(l.snapshot_bf16());
}

namespace {
// Widens `m` to `target` columns by appending copies of the 1-dim init
// feature (§4's expressiveness technique). `out` must not alias `m`.
template <typename T>
void widen_into(const nn::BasicMat<T>& m, const nn::BasicMat<T>& feat0, int target,
                nn::BasicMat<T>& out) {
  out.resize(m.rows(), target);
  for (int r = 0; r < m.rows(); ++r) {
    std::copy(m.row_ptr(r), m.row_ptr(r) + m.cols(), out.row_ptr(r));
    for (int c = m.cols(); c < target; ++c) out.at(r, c) = feat0.at(r, 0);
  }
}

// Row body of widen_into for sharded callers; `out` must be pre-sized.
template <typename T>
inline void widen_row(const nn::BasicMat<T>& m, const nn::BasicMat<T>& feat0, int r,
                      nn::BasicMat<T>& out) {
  const int target = out.cols();
  std::copy(m.row_ptr(r), m.row_ptr(r) + m.cols(), out.row_ptr(r));
  for (int c = m.cols(); c < target; ++c) out.at(r, c) = feat0.at(r, 0);
}

// Mean over a neighbor list into one pre-sized output row. Accumulation
// order follows the list, so any row partition is bit-identical.
template <typename T, typename List>
inline void mean_gather_row(const nn::BasicMat<T>& src, const List& neighbors, T* out,
                            int d) {
  for (int c = 0; c < d; ++c) out[c] = T(0);
  if (neighbors.empty()) return;
  for (auto n : neighbors) {
    const T* nr = src.row_ptr(static_cast<int>(n));
    for (int c = 0; c < d; ++c) out[c] += nr[c];
  }
  const T inv = T(1) / static_cast<T>(neighbors.size());
  for (int c = 0; c < d; ++c) out[c] *= inv;
}

// Concat row body: out row r = [a row r | b row r]; `out` pre-sized.
template <typename T>
inline void concat_row(const nn::BasicMat<T>& a, const nn::BasicMat<T>& b, int r,
                       nn::BasicMat<T>& out) {
  std::copy(a.row_ptr(r), a.row_ptr(r) + a.cols(), out.row_ptr(r));
  std::copy(b.row_ptr(r), b.row_ptr(r) + b.cols(), out.row_ptr(r) + a.cols());
}
}  // namespace

void FlowGnn::scatter_grad_edges_from_paths(const te::Problem& pb, const nn::Mat& g_agg,
                                            nn::Mat& g_paths) const {
  // Transpose of aggregate_paths_to_edges: each path on edge e receives
  // g_agg(e) / |paths_on_edge(e)|. Parallelized over paths (gather form) to
  // stay race-free.
  const int np = pb.total_paths();
  const int d = g_agg.cols();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(np), [&](std::size_t b, std::size_t e) {
        for (std::size_t pi = b; pi < e; ++pi) {
          double* out = g_paths.row_ptr(static_cast<int>(pi));
          for (topo::EdgeId ei : pb.path_edges(static_cast<int>(pi))) {
            const auto cnt = static_cast<double>(pb.paths_on_edge(ei).size());
            const double* gr = g_agg.row_ptr(ei);
            for (int c = 0; c < d; ++c) out[c] += gr[c] / cnt;
          }
        }
      });
}

void FlowGnn::scatter_grad_paths_from_edges(const te::Problem& pb, const nn::Mat& g_agg,
                                            nn::Mat& g_edges) const {
  const int ne = pb.graph().num_edges();
  const int d = g_agg.cols();
  util::ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(ne), [&](std::size_t b, std::size_t e) {
        for (std::size_t ei = b; ei < e; ++ei) {
          double* out = g_edges.row_ptr(static_cast<int>(ei));
          // Gather from each path traversing this edge: that path's agg
          // divided by the path's own edge count.
          for (int p : pb.paths_on_edge(static_cast<topo::EdgeId>(ei))) {
            const auto cnt = static_cast<double>(pb.path_edges(p).size());
            const double* gr = g_agg.row_ptr(p);
            for (int c = 0; c < d; ++c) out[c] += gr[c] / cnt;
          }
        }
      });
}

template <typename T, typename Lin>
void FlowGnn::edge_pass_rows(const te::Problem& pb, ForwardT<T>& fwd,
                             const std::vector<Lin>& edge_lin, int l, int e_begin,
                             int e_end) const {
  // Fused edge side of block l for rows [e_begin, e_end): bipartite
  // aggregation gather (the coupled link-level step — it reads *all* path
  // rows of the block input, which is why blocks need a barrier), concat,
  // dense update, activation and widening toward the next block. Every
  // write lands in this slice's rows only.
  auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
  const int d = dims_[static_cast<std::size_t>(l)];
  const auto& lin = edge_lin[static_cast<std::size_t>(l)];
  const bool last = l + 1 >= cfg_.n_blocks;
  nn::BasicMat<T>* next_in =
      last ? nullptr : &fwd.blocks[static_cast<std::size_t>(l) + 1].edge_in;
  for (int e = e_begin; e < e_end; ++e) {
    mean_gather_row(blk.path_in, pb.paths_on_edge(static_cast<topo::EdgeId>(e)),
                    fwd.agg_e.row_ptr(e), d);
    concat_row(blk.edge_in, fwd.agg_e, e, blk.edge_cat);
  }
  lin.forward_rows(blk.edge_cat, blk.edge_pre, e_begin, e_end);
  nn::leaky_relu_forward_rows(blk.edge_pre, blk.edge_act, e_begin, e_end, cfg_.leaky_alpha);
  if (next_in != nullptr) {
    for (int e = e_begin; e < e_end; ++e) widen_row(blk.edge_act, fwd.edge_feat0, e, *next_in);
  }
}

template <typename T, typename Lin>
void FlowGnn::demand_pass_rows(const te::Problem& pb, ForwardT<T>& fwd,
                               const std::vector<Lin>& path_lin,
                               const std::vector<Lin>& dnn_lin, int l, int d_begin,
                               int d_end) const {
  // Fused demand side of block l for demands [d_begin, d_end): per-path
  // aggregation/dense update, then the per-demand DNN layer, then widening
  // (or the final-embedding copy). Paths of a demand are contiguous, so the
  // slice touches only its own rows of every matrix.
  auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
  const int d = dims_[static_cast<std::size_t>(l)];
  const int k = k_paths_;
  const auto& p_lin = path_lin[static_cast<std::size_t>(l)];
  const auto& dnn = dnn_lin[static_cast<std::size_t>(l)];
  const bool last = l + 1 >= cfg_.n_blocks;
  nn::BasicMat<T>* next_in =
      last ? nullptr : &fwd.blocks[static_cast<std::size_t>(l) + 1].path_in;
  if (d_begin >= d_end) return;
  // The slice's paths are contiguous (demands own contiguous path ranges),
  // so every dense kernel runs once over the whole slice.
  const int p_begin = pb.path_begin(d_begin);
  const int p_end = pb.path_end(d_end - 1);
  // --- GNN layer, path side.
  for (int p = p_begin; p < p_end; ++p) {
    mean_gather_row(blk.edge_in, pb.path_edges(p), fwd.agg_p.row_ptr(p), d);
    concat_row(blk.path_in, fwd.agg_p, p, blk.path_cat);
  }
  p_lin.forward_rows(blk.path_cat, blk.path_pre, p_begin, p_end);
  nn::leaky_relu_forward_rows(blk.path_pre, blk.path_act, p_begin, p_end, cfg_.leaky_alpha);
  // --- DNN layer: coordinate the k paths of each demand. Demands with
  // fewer than k paths keep zero padding in their trailing slots.
  for (int dem = d_begin; dem < d_end; ++dem) {
    T* row = blk.dnn_in.row_ptr(dem);
    std::fill(row, row + k * d, T(0));
    int slot = 0;
    for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
      std::copy(blk.path_act.row_ptr(p), blk.path_act.row_ptr(p) + d, row + slot * d);
    }
  }
  dnn.forward_rows(blk.dnn_in, blk.dnn_pre, d_begin, d_end);
  nn::leaky_relu_forward_rows(blk.dnn_pre, fwd.dnn_act, d_begin, d_end, cfg_.leaky_alpha);
  for (int dem = d_begin; dem < d_end; ++dem) {
    const T* act = fwd.dnn_act.row_ptr(dem);
    int slot = 0;
    for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
      std::copy(act + slot * d, act + (slot + 1) * d, blk.path_out.row_ptr(p));
    }
  }
  // --- Widen toward the next block's dimension, refilled with the
  // initialization value (§4), or copy out the final embeddings.
  for (int p = p_begin; p < p_end; ++p) {
    if (next_in != nullptr) {
      widen_row(blk.path_out, fwd.path_feat0, p, *next_in);
    } else {
      std::copy(blk.path_out.row_ptr(p), blk.path_out.row_ptr(p) + d,
                fwd.final_paths.row_ptr(p));
    }
  }
}

template <typename T, typename Lin>
void FlowGnn::forward_impl(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ForwardT<T>& fwd,
                           const ShardPlan& shards, ShardStat* stats,
                           const std::vector<Lin>& edge_lin,
                           const std::vector<Lin>& path_lin,
                           const std::vector<Lin>& dnn_lin) const {
  const int ne = pb.graph().num_edges();
  const int np = pb.total_paths();
  const int nd = pb.num_demands();
  const int k = k_paths_;

  fwd.blocks.resize(static_cast<std::size_t>(cfg_.n_blocks));

  // Initial 1-dim features, normalized by the mean link capacity so both
  // entities live on comparable scales (§3.2). The mean is a cross-demand
  // reduction, computed sequentially — and always in double, even on the
  // f32 path — so every shard plan sees identical bits and the narrowed
  // path loses precision only in the per-row NN arithmetic.
  if (capacities == nullptr) {
    pb.capacities_into(fwd.caps);
    capacities = &fwd.caps;
  }
  const std::vector<double>& caps = *capacities;
  double mean_cap = 1e-9;
  for (double c : caps) mean_cap += c;
  mean_cap /= std::max<std::size_t>(1, caps.size());
  fwd.edge_feat0.resize(ne, 1);
  for (int e = 0; e < ne; ++e) {
    fwd.edge_feat0.at(e, 0) = static_cast<T>(caps[static_cast<std::size_t>(e)] / mean_cap);
  }
  fwd.path_feat0.resize(np, 1);
  for (int p = 0; p < np; ++p) {
    fwd.path_feat0.at(p, 0) = static_cast<T>(
        tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))] / mean_cap);
  }

  widen_into(fwd.edge_feat0, fwd.edge_feat0, dims_[0], fwd.blocks[0].edge_in);
  widen_into(fwd.path_feat0, fwd.path_feat0, dims_[0], fwd.blocks[0].path_in);

  for (int l = 0; l < cfg_.n_blocks; ++l) {
    auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
    const int d = dims_[static_cast<std::size_t>(l)];

    // Size every buffer of the block before fanning out — resize must never
    // run concurrently, and pre-sizing keeps warm passes allocation-free
    // exactly as before.
    fwd.agg_e.resize(ne, d);
    fwd.agg_p.resize(np, d);
    blk.edge_cat.resize(ne, 2 * d);
    blk.path_cat.resize(np, 2 * d);
    blk.edge_pre.resize(ne, d);
    blk.path_pre.resize(np, d);
    blk.edge_act.resize(ne, d);
    blk.path_act.resize(np, d);
    blk.dnn_in.resize(nd, k * d);
    blk.dnn_pre.resize(nd, k * d);
    fwd.dnn_act.resize(nd, k * d);
    blk.path_out.resize(np, d);
    if (l + 1 < cfg_.n_blocks) {
      const int next = dims_[static_cast<std::size_t>(l) + 1];
      auto& nxt = fwd.blocks[static_cast<std::size_t>(l) + 1];
      nxt.edge_in.resize(ne, next);
      nxt.path_in.resize(np, next);
    } else {
      fwd.final_paths.resize(np, d);
    }

    // Edge pass (coupled link-level step): parallel over edge rows through
    // the pool — deterministic per row, so identical under any chunking.
    util::ThreadPool::global().parallel_chunks(
        static_cast<std::size_t>(ne), [&](std::size_t b, std::size_t e) {
          edge_pass_rows(pb, fwd, edge_lin, l, static_cast<int>(b), static_cast<int>(e));
        });
    // Demand pass: fanned over the shard plan, each shard writing its own
    // demand slice of the shared workspace.
    run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
      demand_pass_rows(pb, fwd, path_lin, dnn_lin, l, d0, d1);
    });
  }
}

void FlowGnn::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                      const std::vector<double>* capacities, Forward& fwd,
                      const ShardPlan& shards, ShardStat* stats) const {
  forward_impl(pb, tm, capacities, fwd, shards, stats, edge_linear_, path_linear_,
               dnn_linear_);
}

void FlowGnn::forward_f32(const te::Problem& pb, const te::TrafficMatrix& tm,
                          const std::vector<double>* capacities, ForwardF& fwd,
                          const ShardPlan& shards, ShardStat* stats) const {
  if (!f32_ready()) {
    throw std::logic_error(
        "FlowGnn::forward_f32: prepare_f32() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  forward_impl(pb, tm, capacities, fwd, shards, stats, edge_f32_, path_f32_, dnn_f32_);
}

void FlowGnn::forward_bf16(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ForwardF& fwd,
                           const ShardPlan& shards, ShardStat* stats) const {
  if (!bf16_ready()) {
    throw std::logic_error(
        "FlowGnn::forward_bf16: prepare_bf16() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  forward_impl(pb, tm, capacities, fwd, shards, stats, edge_bf16_, path_bf16_, dnn_bf16_);
}

void FlowGnn::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                      const std::vector<double>* capacities, Forward& fwd) const {
  forward(pb, tm, capacities, fwd,
          ShardPlan::make(pb.num_demands(),
                          auto_shard_count(pb.num_demands(), pb.total_paths())));
}

FlowGnn::Forward FlowGnn::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const std::vector<double>* capacities) const {
  Forward fwd;
  forward(pb, tm, capacities, fwd);
  return fwd;
}

void FlowGnn::backward(const te::Problem& pb, const Forward& fwd,
                       const nn::Mat& grad_final_paths) {
  const int ne = pb.graph().num_edges();
  const int np = pb.total_paths();
  const int nd = pb.num_demands();
  const int k = k_paths_;

  nn::Mat g_path_out = grad_final_paths;            // d(loss)/d(block path_out)
  nn::Mat g_edge_out(ne, dims_.back());             // last block's edge output unused

  for (int l = cfg_.n_blocks - 1; l >= 0; --l) {
    const auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
    const int d = dims_[static_cast<std::size_t>(l)];

    // --- DNN layer backward.
    nn::Mat g_dnn_act(nd, k * d);
    for (int dem = 0; dem < nd; ++dem) {
      double* row = g_dnn_act.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(g_path_out.row_ptr(p), g_path_out.row_ptr(p) + d, row + slot * d);
      }
    }
    nn::Mat g_dnn_pre, g_dnn_in;
    nn::leaky_relu_backward(blk.dnn_pre, g_dnn_act, g_dnn_pre, cfg_.leaky_alpha);
    dnn_linear_[static_cast<std::size_t>(l)].backward(blk.dnn_in, g_dnn_pre, g_dnn_in);
    nn::Mat g_path_act(np, d);
    for (int dem = 0; dem < nd; ++dem) {
      const double* row = g_dnn_in.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(row + slot * d, row + (slot + 1) * d, g_path_act.row_ptr(p));
      }
    }

    // --- GNN layer backward (edge and path updates are independent given the
    // block inputs, because message passing is synchronous).
    nn::Mat g_path_pre, g_path_cat;
    nn::leaky_relu_backward(blk.path_pre, g_path_act, g_path_pre, cfg_.leaky_alpha);
    path_linear_[static_cast<std::size_t>(l)].backward(blk.path_cat, g_path_pre, g_path_cat);

    nn::Mat g_edge_pre, g_edge_cat;
    nn::leaky_relu_backward(blk.edge_pre, g_edge_out, g_edge_pre, cfg_.leaky_alpha);
    edge_linear_[static_cast<std::size_t>(l)].backward(blk.edge_cat, g_edge_pre, g_edge_cat);

    // Split the concat grads: [self | agg].
    nn::Mat g_path_in(np, d), g_edge_in(ne, d);
    nn::Mat g_agg_edges(np, d);  // grad of aggregate_edges_to_paths output
    for (int p = 0; p < np; ++p) {
      const double* src = g_path_cat.row_ptr(p);
      std::copy(src, src + d, g_path_in.row_ptr(p));
      std::copy(src + d, src + 2 * d, g_agg_edges.row_ptr(p));
    }
    nn::Mat g_agg_paths(ne, d);  // grad of aggregate_paths_to_edges output
    for (int e = 0; e < ne; ++e) {
      const double* src = g_edge_cat.row_ptr(e);
      std::copy(src, src + d, g_edge_in.row_ptr(e));
      std::copy(src + d, src + 2 * d, g_agg_paths.row_ptr(e));
    }
    // Aggregation transposes.
    scatter_grad_paths_from_edges(pb, g_agg_edges, g_edge_in);
    scatter_grad_edges_from_paths(pb, g_agg_paths, g_path_in);

    // --- Widening backward: the previous block's outputs are the leading
    // columns of this block's inputs (appended init columns are constants).
    if (l > 0) {
      const int prev = dims_[static_cast<std::size_t>(l) - 1];
      g_path_out = nn::Mat(np, prev);
      for (int p = 0; p < np; ++p) {
        std::copy(g_path_in.row_ptr(p), g_path_in.row_ptr(p) + prev, g_path_out.row_ptr(p));
      }
      g_edge_out = nn::Mat(ne, prev);
      for (int e = 0; e < ne; ++e) {
        std::copy(g_edge_in.row_ptr(e), g_edge_in.row_ptr(e) + prev, g_edge_out.row_ptr(e));
      }
    }
  }
}

void FlowGnn::backward_ws(const te::Problem& pb, const Forward& fwd,
                          const nn::Mat& grad_final_paths, BackwardWs& ws,
                          nn::GradRefs grads) const {
  if (grads.size() != num_params()) {
    throw std::invalid_argument("FlowGnn::backward_ws: grads size mismatch");
  }
  const int ne = pb.graph().num_edges();
  const int np = pb.total_paths();
  const int nd = pb.num_demands();
  const int k = k_paths_;
  const std::size_t n_layers = edge_linear_.size();
  // (weight, bias) accumulator pair of layer l within a layer-kind block.
  auto pair_of = [&](std::size_t block, std::size_t l) {
    return std::pair<nn::Mat&, nn::Mat&>(*grads[(block * n_layers + l) * 2],
                                         *grads[(block * n_layers + l) * 2 + 1]);
  };

  ws.g_path_out.resize(np, grad_final_paths.cols());
  std::copy(grad_final_paths.data().begin(), grad_final_paths.data().end(),
            ws.g_path_out.data().begin());
  ws.g_edge_out.resize(ne, dims_.back());
  ws.g_edge_out.zero();  // the last block's edge output feeds nothing

  for (int l = cfg_.n_blocks - 1; l >= 0; --l) {
    const auto& blk = fwd.blocks[static_cast<std::size_t>(l)];
    const int d = dims_[static_cast<std::size_t>(l)];
    const auto ls = static_cast<std::size_t>(l);

    // --- DNN layer backward. Demands with fewer than k paths leave their
    // trailing slots untouched, so the gather buffer must start zeroed.
    ws.g_dnn_act.resize(nd, k * d);
    ws.g_dnn_act.zero();
    for (int dem = 0; dem < nd; ++dem) {
      double* row = ws.g_dnn_act.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(ws.g_path_out.row_ptr(p), ws.g_path_out.row_ptr(p) + d, row + slot * d);
      }
    }
    nn::leaky_relu_backward(blk.dnn_pre, ws.g_dnn_act, ws.g_dnn_pre, cfg_.leaky_alpha);
    {
      auto [gw, gb] = pair_of(2, ls);
      dnn_linear_[ls].backward_acc(blk.dnn_in, ws.g_dnn_pre, ws.g_dnn_in, gw, gb);
    }
    ws.g_path_act.resize(np, d);
    ws.g_path_act.zero();
    for (int dem = 0; dem < nd; ++dem) {
      const double* row = ws.g_dnn_in.row_ptr(dem);
      int slot = 0;
      for (int p = pb.path_begin(dem); p < pb.path_end(dem); ++p, ++slot) {
        std::copy(row + slot * d, row + (slot + 1) * d, ws.g_path_act.row_ptr(p));
      }
    }

    // --- GNN layer backward (edge and path updates independent given the
    // block inputs, exactly as in backward()).
    nn::leaky_relu_backward(blk.path_pre, ws.g_path_act, ws.g_path_pre, cfg_.leaky_alpha);
    {
      auto [gw, gb] = pair_of(1, ls);
      path_linear_[ls].backward_acc(blk.path_cat, ws.g_path_pre, ws.g_path_cat, gw, gb);
    }
    nn::leaky_relu_backward(blk.edge_pre, ws.g_edge_out, ws.g_edge_pre, cfg_.leaky_alpha);
    {
      auto [gw, gb] = pair_of(0, ls);
      edge_linear_[ls].backward_acc(blk.edge_cat, ws.g_edge_pre, ws.g_edge_cat, gw, gb);
    }

    // Split the concat grads: [self | agg].
    ws.g_path_in.resize(np, d);
    ws.g_agg_edges.resize(np, d);
    for (int p = 0; p < np; ++p) {
      const double* src = ws.g_path_cat.row_ptr(p);
      std::copy(src, src + d, ws.g_path_in.row_ptr(p));
      std::copy(src + d, src + 2 * d, ws.g_agg_edges.row_ptr(p));
    }
    ws.g_edge_in.resize(ne, d);
    ws.g_agg_paths.resize(ne, d);
    for (int e = 0; e < ne; ++e) {
      const double* src = ws.g_edge_cat.row_ptr(e);
      std::copy(src, src + d, ws.g_edge_in.row_ptr(e));
      std::copy(src + d, src + 2 * d, ws.g_agg_paths.row_ptr(e));
    }
    // Aggregation transposes (accumulate on top of the self halves).
    scatter_grad_paths_from_edges(pb, ws.g_agg_edges, ws.g_edge_in);
    scatter_grad_edges_from_paths(pb, ws.g_agg_paths, ws.g_path_in);

    // --- Widening backward: the previous block's outputs are the leading
    // columns of this block's inputs (appended init columns are constants).
    if (l > 0) {
      const int prev = dims_[ls - 1];
      ws.g_path_out.resize(np, prev);
      for (int p = 0; p < np; ++p) {
        std::copy(ws.g_path_in.row_ptr(p), ws.g_path_in.row_ptr(p) + prev,
                  ws.g_path_out.row_ptr(p));
      }
      ws.g_edge_out.resize(ne, prev);
      for (int e = 0; e < ne; ++e) {
        std::copy(ws.g_edge_in.row_ptr(e), ws.g_edge_in.row_ptr(e) + prev,
                  ws.g_edge_out.row_ptr(e));
      }
    }
  }
}

std::vector<nn::Param*> FlowGnn::params() {
  std::vector<nn::Param*> ps;
  ps.reserve(num_params());
  append_params(ps);
  return ps;
}

void FlowGnn::append_params(std::vector<nn::Param*>& out) {
  for (auto& l : edge_linear_) l.append_params(out);
  for (auto& l : path_linear_) l.append_params(out);
  for (auto& l : dnn_linear_) l.append_params(out);
}

}  // namespace teal::core
