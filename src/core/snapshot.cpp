#include "core/snapshot.h"

#include <stdexcept>
#include <utility>

namespace teal::core {

ModelHub::ModelHub(std::shared_ptr<Model> initial) {
  if (!initial) throw std::invalid_argument("ModelHub: initial model is null");
  cur_.model = std::move(initial);
  cur_.version = 1;
}

ModelSnapshot ModelHub::acquire() const {
  std::lock_guard lk(mu_);
  return cur_;
}

std::uint64_t ModelHub::publish(std::shared_ptr<Model> m) {
  if (!m) throw std::invalid_argument("ModelHub::publish: model is null");
  std::lock_guard lk(mu_);
  cur_.model = std::move(m);
  return ++cur_.version;
}

std::uint64_t ModelHub::version() const {
  std::lock_guard lk(mu_);
  return cur_.version;
}

}  // namespace teal::core
