#include "core/coma.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/thread_pool.h"

namespace teal::core {

namespace {

// Masked softmax of one row of k logits into `out` (entries at invalid slots
// are zeroed).
void row_softmax(const double* z, const double* mask, int k, double* out) {
  double mx = -1e300;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) mx = std::max(mx, z[c]);
  }
  double denom = 0.0;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) {
      out[c] = std::exp(z[c] - mx);
      denom += out[c];
    } else {
      out[c] = 0.0;
    }
  }
  if (denom > 0.0) {
    for (int c = 0; c < k; ++c) out[c] /= denom;
  }
}

}  // namespace

double evaluate_model(const Model& model, const te::Problem& pb,
                      const traffic::Trace& trace, te::Objective obj) {
  double total = 0.0;
  const std::vector<double> caps = pb.capacities();
  for (int t = 0; t < trace.size(); ++t) {
    const auto& tm = trace.at(t);
    auto fwd = model.forward_m(pb, tm, &caps);
    auto alloc = allocation_from_splits(pb, splits_from_logits(fwd.logits, fwd.mask));
    total += te::objective_score(pb, tm, alloc, obj, &caps) / std::max(1e-9, tm.total());
  }
  return total / std::max(1, trace.size());
}

TrainStats train_coma(Model& model, const te::Problem& pb, const traffic::Trace& train,
                      te::Objective obj, const ComaConfig& cfg) {
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  RewardSimulator sim(pb, obj);
  const std::vector<double> caps = pb.capacities();

  // Per-worker RNGs and scratch, so counterfactual evaluation parallelizes.
  // The fork-join region runs up to pool.size() + 1 chunks concurrently (the
  // calling thread participates), so size the slot arrays accordingly —
  // a wrapped slot index would be a data race on the Rng/Scratch state.
  auto& pool = util::ThreadPool::global();
  const std::size_t n_workers = pool.size() + 1;
  util::Rng root(cfg.seed);
  std::vector<util::Rng> worker_rng;
  std::vector<RewardSimulator::Scratch> worker_scratch;
  for (std::size_t w = 0; w < n_workers; ++w) {
    worker_rng.push_back(root.fork(w + 1));
    worker_scratch.push_back(sim.make_scratch());
  }

  TrainStats stats;
  double best_val = -std::numeric_limits<double>::infinity();
  std::vector<nn::Mat> best_params;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double reward_sum = 0.0;
    for (int t = 0; t < train.size(); ++t) {
      const te::TrafficMatrix& tm = train.at(t);
      auto fwd = model.forward_m(pb, tm);

      // Sample the joint action: z ~ N(mu, sigma^2) on valid slots.
      nn::Mat z(nd, k), splits(nd, k);
      {
        util::Rng& rng = worker_rng[0];
        for (int d = 0; d < nd; ++d) {
          for (int c = 0; c < k; ++c) {
            z.at(d, c) = fwd.logits.at(d, c) +
                         (fwd.mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
          }
          row_softmax(z.row_ptr(d), fwd.mask.row_ptr(d), k, splits.row_ptr(d));
        }
      }
      sim.set_state(tm, caps, splits);
      reward_sum += sim.global_reward() / std::max(1e-9, tm.total());

      // Counterfactual advantages, one agent at a time, in parallel.
      std::vector<double> advantage(static_cast<std::size_t>(nd), 0.0);
      std::atomic<std::size_t> next_worker{0};
      pool.parallel_chunks(static_cast<std::size_t>(nd), [&](std::size_t b, std::size_t e) {
        const std::size_t w = next_worker.fetch_add(1) % n_workers;
        auto& rng = worker_rng[w];
        auto& scratch = worker_scratch[w];
        std::vector<double> zc(static_cast<std::size_t>(k));
        std::vector<double> cand(static_cast<std::size_t>(k));
        for (std::size_t di = b; di < e; ++di) {
          const int d = static_cast<int>(di);
          const double base = sim.value_of(d, splits.row_ptr(d), scratch);
          double baseline = 0.0;
          for (int m = 0; m < cfg.mc_samples; ++m) {
            for (int c = 0; c < k; ++c) {
              zc[static_cast<std::size_t>(c)] =
                  fwd.logits.at(d, c) +
                  (fwd.mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
            }
            row_softmax(zc.data(), fwd.mask.row_ptr(d), k, cand.data());
            baseline += sim.value_of(d, cand.data(), scratch);
          }
          baseline /= std::max(1, cfg.mc_samples);
          advantage[di] = base - baseline;
        }
      });

      // Scale-normalize the advantages (keeps gradients comparable across
      // topologies without destroying per-agent sign information).
      double sq = 0.0;
      for (double a : advantage) sq += a * a;
      double scale = 1.0 / (std::sqrt(sq / std::max(1, nd)) + cfg.adv_norm_eps);

      // Policy gradient on the Gaussian mean: dlogpi/dmu = (z - mu) / sigma^2.
      // We minimize -J, hence the leading minus.
      nn::Mat grad_logits(nd, k);
      const double inv_var = 1.0 / (cfg.sigma * cfg.sigma);
      for (int d = 0; d < nd; ++d) {
        const double a = advantage[static_cast<std::size_t>(d)] * scale;
        for (int c = 0; c < k; ++c) {
          if (fwd.mask.at(d, c) != 0.0) {
            grad_logits.at(d, c) = -a * (z.at(d, c) - fwd.logits.at(d, c)) * inv_var;
          }
        }
      }

      adam.zero_grad();
      model.backward_m(pb, fwd, grad_logits);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
    }
    double mean_reward = reward_sum / std::max(1, train.size());
    stats.epoch_reward.push_back(mean_reward);

    if (cfg.validation && cfg.validation->size() > 0) {
      double score = evaluate_model(model, pb, *cfg.validation, obj);
      stats.epoch_validation.push_back(score);
      if (score > best_val) {
        best_val = score;
        stats.best_epoch = epoch;
        best_params.clear();
        for (nn::Param* p : model.params()) best_params.push_back(p->w);
      }
    }
    if (cfg.verbose) {
      std::printf("[coma] epoch %d mean normalized reward %.4f%s\n", epoch, mean_reward,
                  stats.epoch_validation.empty()
                      ? ""
                      : (" val " + std::to_string(stats.epoch_validation.back())).c_str());
    }
  }
  // Restore the best validation snapshot.
  if (!best_params.empty()) {
    auto params = model.params();
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->w = best_params[i];
  }
  return stats;
}

}  // namespace teal::core
