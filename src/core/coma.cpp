#include "core/coma.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/train_context.h"
#include "util/alloc_hook.h"
#include "util/thread_pool.h"

namespace teal::core {

namespace {

// Masked softmax of one row of k logits into `out` (entries at invalid slots
// are zeroed).
void row_softmax(const double* z, const double* mask, int k, double* out) {
  double mx = -1e300;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) mx = std::max(mx, z[c]);
  }
  double denom = 0.0;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) {
      out[c] = std::exp(z[c] - mx);
      denom += out[c];
    } else {
      out[c] = 0.0;
    }
  }
  if (denom > 0.0) {
    for (int c = 0; c < k; ++c) out[c] /= denom;
  }
}

// Per-lane counterfactual scratch. A "lane" is whichever unit of the step
// runs concurrently: a rollout chunk when the batch fans out, an inner
// demand shard when a lone rollout fans its advantage pass over the pool —
// never both at once, so one array serves both shapes.
struct CfLane {
  RewardSimulator::Scratch scratch;
  std::vector<double> zc;    // candidate logits
  std::vector<double> cand;  // candidate splits
};

}  // namespace

std::uint64_t coma_noise_seed(std::uint64_t seed, int epoch, int t, std::uint64_t tag) {
  // Domain-separated stream tree: the root is seed ^ domain so COMA's
  // exploration noise is decorrelated from any other consumer of the same
  // root seed, then one mix per level — epoch, rollout, demand-phase tag
  // (epoch/rollout tags offset by 1 to keep tag 0 distinct from the root).
  constexpr std::uint64_t kComaNoiseDomain = 5;
  const std::uint64_t per_epoch =
      util::Rng::mix_seed(seed ^ kComaNoiseDomain, static_cast<std::uint64_t>(epoch) + 1);
  const std::uint64_t per_rollout =
      util::Rng::mix_seed(per_epoch, static_cast<std::uint64_t>(t) + 1);
  return util::Rng::mix_seed(per_rollout, tag);
}

double evaluate_model(const Model& model, const te::Problem& pb,
                      const traffic::Trace& trace, te::Objective obj) {
  double total = 0.0;
  const std::vector<double> caps = pb.capacities();
  for (int t = 0; t < trace.size(); ++t) {
    const auto& tm = trace.at(t);
    auto fwd = model.forward_m(pb, tm, &caps);
    auto alloc = allocation_from_splits(pb, splits_from_logits(fwd.logits, fwd.mask));
    total += te::objective_score(pb, tm, alloc, obj, &caps) / std::max(1e-9, tm.total());
  }
  return total / std::max(1, trace.size());
}

TrainStats train_coma(Model& model, const te::Problem& pb, const traffic::Trace& train,
                      te::Objective obj, const ComaConfig& cfg) {
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  const std::vector<double> caps = pb.capacities();

  TrainContext ctx;
  ctx.prepare(model, pb, cfg.rollout_batch, cfg.workers);
  const int batch = ctx.rollout_batch();

  // Inner per-rollout demand plan: when the step's rollouts run concurrently
  // the outer fan-out owns the threads and each rollout stays sequential;
  // a lone rollout instead fans its per-demand stages (sampling, advantages,
  // gradient fill) over the otherwise-idle pool — the same axis-composition
  // rule as TealScheme::solve_batch. Either way results are bit-identical:
  // every per-demand value depends only on (rollout, demand)-keyed streams.
  const ShardPlan inner_auto =
      ShardPlan::make(nd, auto_shard_count(nd, pb.total_paths()));
  const ShardPlan inner_seq = ShardPlan::sequential(nd);

  // One RewardSimulator per rollout chunk (set_state is per-rollout mutable
  // state); one CfLane per concurrent lane.
  std::vector<RewardSimulator> sims;
  sims.reserve(static_cast<std::size_t>(ctx.workers()));
  for (int c = 0; c < ctx.workers(); ++c) sims.emplace_back(pb, obj);
  const int n_lanes = std::max(ctx.workers(), inner_auto.n_shards);
  std::vector<CfLane> lanes(static_cast<std::size_t>(n_lanes));
  for (auto& l : lanes) {
    l.scratch = sims.front().make_scratch();
    l.zc.resize(static_cast<std::size_t>(k));
    l.cand.resize(static_cast<std::size_t>(k));
  }

  TrainStats stats;
  double best_val = -std::numeric_limits<double>::infinity();
  std::vector<nn::Mat> best_params;
  int step_index = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double reward_sum = 0.0;
    for (int t0 = 0; t0 < train.size(); t0 += batch) {
      const int n_active = std::min(batch, train.size() - t0);
      const ShardPlan& plan = ctx.chunks_for(n_active) > 1 ? inner_seq : inner_auto;
      util::AllocCounter step_allocs;

      adam.zero_grad();
      ctx.for_slots(n_active, [&](int s, int chunk) {
        const int t = t0 + s;
        const te::TrafficMatrix& tm = train.at(t);
        auto& slot = ctx.slot(s);

        // Forward through the slot's workspace (allocation-free once warm;
        // models without the seam fall back to forward_m internally).
        model.forward_ws(pb, tm, &caps, slot.ws.fwd, plan, nullptr);
        const nn::Mat& logits = slot.ws.fwd.logits;
        const nn::Mat& mask = slot.ws.fwd.mask;

        // Sample the joint action z ~ N(mu, sigma^2) on valid slots and
        // squash to splits — per-demand streams, disjoint rows.
        slot.z.resize(nd, k);
        slot.ws.splits.resize(nd, k);
        run_sharded(plan, nullptr, [&](int /*shard*/, int d0, int d1) {
          for (int d = d0; d < d1; ++d) {
            util::CounterRng rng(coma_noise_seed(cfg.seed, epoch, t,
                                                 2 * static_cast<std::uint64_t>(d)));
            for (int c = 0; c < k; ++c) {
              slot.z.at(d, c) =
                  logits.at(d, c) +
                  (mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
            }
            row_softmax(slot.z.row_ptr(d), mask.row_ptr(d), k,
                        slot.ws.splits.row_ptr(d));
          }
        });

        // Joint state + exact global reward (reported, not differentiated).
        RewardSimulator& sim = sims[static_cast<std::size_t>(chunk)];
        sim.set_state(tm, caps, slot.ws.splits);
        slot.stat = sim.global_reward() / std::max(1e-9, tm.total());

        // Counterfactual advantages, one agent at a time (Equation 2).
        slot.advantage.assign(static_cast<std::size_t>(nd), 0.0);
        run_sharded(plan, nullptr, [&](int shard, int d0, int d1) {
          CfLane& lane =
              lanes[static_cast<std::size_t>(plan.sharded() ? shard : chunk)];
          for (int d = d0; d < d1; ++d) {
            util::CounterRng rng(coma_noise_seed(cfg.seed, epoch, t,
                                                 2 * static_cast<std::uint64_t>(d) + 1));
            const double base =
                sim.value_of(d, slot.ws.splits.row_ptr(d), lane.scratch);
            double baseline = 0.0;
            for (int m = 0; m < cfg.mc_samples; ++m) {
              for (int c = 0; c < k; ++c) {
                lane.zc[static_cast<std::size_t>(c)] =
                    logits.at(d, c) +
                    (mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
              }
              row_softmax(lane.zc.data(), mask.row_ptr(d), k, lane.cand.data());
              baseline += sim.value_of(d, lane.cand.data(), lane.scratch);
            }
            baseline /= std::max(1, cfg.mc_samples);
            slot.advantage[static_cast<std::size_t>(d)] = base - baseline;
          }
        });

        // Scale-normalize the advantages (keeps gradients comparable across
        // topologies without destroying per-agent sign information).
        double sq = 0.0;
        for (double a : slot.advantage) sq += a * a;
        const double scale = 1.0 / (std::sqrt(sq / std::max(1, nd)) + cfg.adv_norm_eps);

        // Policy gradient on the Gaussian mean: dlogpi/dmu = (z - mu)/sigma^2.
        // We minimize -J, hence the leading minus.
        slot.grad_logits.resize(nd, k);
        slot.grad_logits.zero();
        const double inv_var = 1.0 / (cfg.sigma * cfg.sigma);
        run_sharded(plan, nullptr, [&](int /*shard*/, int d0, int d1) {
          for (int d = d0; d < d1; ++d) {
            const double a = slot.advantage[static_cast<std::size_t>(d)] * scale;
            for (int c = 0; c < k; ++c) {
              if (mask.at(d, c) != 0.0) {
                slot.grad_logits.at(d, c) =
                    -a * (slot.z.at(d, c) - logits.at(d, c)) * inv_var;
              }
            }
          }
        });

        if (ctx.ws_path()) {
          slot.grads.zero();
          model.backward_ws(pb, slot.ws.fwd, slot.grad_logits, ctx.bws(chunk),
                            slot.grads.refs());
        } else {
          // Legacy models: sequential by construction (workers forced to 1),
          // accumulate straight into Param::g.
          model.backward_m(pb, slot.ws.fwd, slot.grad_logits);
        }
      });

      if (ctx.ws_path()) ctx.reduce(n_active);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
      for (int s = 0; s < n_active; ++s) reward_sum += ctx.slot(s).stat;

      if (step_index > 0) stats.warm_step_allocs += step_allocs.count();
      ++step_index;
    }
    double mean_reward = reward_sum / std::max(1, train.size());
    stats.epoch_reward.push_back(mean_reward);

    if (cfg.validation && cfg.validation->size() > 0) {
      double score = evaluate_model(model, pb, *cfg.validation, obj);
      stats.epoch_validation.push_back(score);
      if (score > best_val) {
        best_val = score;
        stats.best_epoch = epoch;
        best_params.clear();
        for (nn::Param* p : ctx.params()) best_params.push_back(p->w);
      }
    }
    if (cfg.verbose) {
      std::printf("[coma] epoch %d mean normalized reward %.4f%s\n", epoch, mean_reward,
                  stats.epoch_validation.empty()
                      ? ""
                      : (" val " + std::to_string(stats.epoch_validation.back())).c_str());
    }
  }
  // Restore the best validation snapshot.
  if (!best_params.empty()) {
    auto& params = ctx.params();
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->w = best_params[i];
  }
  return stats;
}

}  // namespace teal::core
