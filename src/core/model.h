// model.h — Teal's end-to-end "model": FlowGNN + shared policy network.
//
// This is the object that gets trained (per WAN topology and per TE
// objective, §4) and later queried at deployment time. forward() produces a
// (D, k) matrix of policy logits plus the path-validity mask; turning logits
// into split ratios (softmax, or Gaussian exploration during training) is the
// trainer's/scheme's business.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/flow_gnn.h"
#include "core/policy_net.h"

namespace teal::core {

// Type-erased forward result shared by TealModel and the Figure 14 ablation
// variants: per-demand policy logits, the path-validity mask, and an opaque
// cache the owning model needs for its hand-written backward pass.
//
// A ModelForward is also the unit of workspace reuse: forward_ws() re-runs a
// model into the same object, and `owner` records which model produced the
// cache so a stale cache from a different model is never reinterpreted.
struct ModelForward {
  nn::Mat logits;  // (D, k)
  nn::Mat mask;    // (D, k)
  std::shared_ptr<void> cache;
  const void* owner = nullptr;
};

// Opaque per-worker backward scratch for the workspace training path, type-
// erased the same way ModelForward is: the owning model allocates its typed
// grad temporaries on first use and reuses them afterwards, so warm training
// steps run the whole backward without heap allocation. Every value inside is
// fully overwritten per call — sharing one TrainBackward across sequential
// rollouts on the same worker is safe; concurrent rollouts need distinct
// objects.
struct TrainBackward {
  std::shared_ptr<void> cache;
  const void* owner = nullptr;
};

// Interface the trainers (COMA*, direct loss) operate on, so the same
// training loop drives Teal and every ablation variant (§5.7).
class Model {
 public:
  virtual ~Model() = default;

  virtual ModelForward forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                 const std::vector<double>* capacities = nullptr) const = 0;
  virtual void backward_m(const te::Problem& pb, const ModelForward& fwd,
                          const nn::Mat& grad_logits) = 0;
  virtual std::vector<nn::Param*> params() = 0;
  virtual int k_paths() const = 0;

  // Workspace-based forward: re-runs the model into `fwd`, reusing its cache
  // when this model produced it (TealModel makes repeated calls allocation-
  // free). Must be safe to call concurrently with distinct `fwd` objects.
  // Default falls back to the allocating forward_m.
  virtual void forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                          const std::vector<double>* capacities, ModelForward& fwd) const {
    fwd = forward_m(pb, tm, capacities);
  }

  // Demand-sharded workspace forward: per-demand stages fan out over
  // `shards`, writing disjoint rows of `fwd`. Results must be bit-identical
  // for every shard plan. Default ignores the plan — the Figure 14 ablation
  // variants have no per-demand decomposition to shard.
  virtual void forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                          const std::vector<double>* capacities, ModelForward& fwd,
                          const ShardPlan& /*shards*/, ShardStat* /*stats*/ = nullptr) const {
    forward_ws(pb, tm, capacities, fwd);
  }

  // Workspace training seam. supports_train_ws() gates the batched trainer
  // pipeline: when true, backward_ws() must run the same arithmetic as
  // backward_m() but (a) keep its grad temporaries in `bws` so warm steps
  // allocate nothing, and (b) accumulate parameter grads into `grads`
  // (params() order) instead of Param::g — const, so rollout workers with
  // distinct (fwd, bws, grads) triples may run concurrently over one shared
  // model. Models without the seam (the Figure 14 ablation variants) train
  // through the sequential backward_m fallback path instead.
  virtual bool supports_train_ws() const { return false; }
  virtual void backward_ws(const te::Problem& /*pb*/, const ModelForward& /*fwd*/,
                           const nn::Mat& /*grad_logits*/, TrainBackward& /*bws*/,
                           nn::GradRefs /*grads*/) const {
    throw std::logic_error(
        "Model::backward_ws: this model has no workspace training path "
        "(supports_train_ws() is false)");
  }

  // Narrowed f32 inference forward (the paper's fp32 deployment precision):
  // runs the NN arithmetic in float through f32 weight snapshots, widening
  // logits/mask back to double in `fwd` so everything downstream (masked
  // softmax, ADMM) is unchanged. prepare_f32() snapshots the current
  // parameters; it must run before the first f32 forward and after any
  // further training (not thread-safe against concurrent forwards).
  // Defaults: unsupported — forward_ws_f32 falls back to the f64 path, so
  // the precision knob degrades gracefully for the ablation variants.
  virtual bool supports_f32_forward() const { return false; }
  virtual void prepare_f32() {}
  virtual void forward_ws_f32(const te::Problem& pb, const te::TrafficMatrix& tm,
                              const std::vector<double>* capacities, ModelForward& fwd,
                              const ShardPlan& shards, ShardStat* stats = nullptr) const {
    forward_ws(pb, tm, capacities, fwd, shards, stats);
  }

  // bf16-storage inference forward: same seam as the f32 trio, but the layer
  // weights are stored as bf16 panels (activations and every accumulation
  // stay f32, so the cache is the same float workspace as the f32 path).
  // Defaults mirror f32: unsupported, graceful f64 fallback.
  virtual bool supports_bf16_forward() const { return false; }
  virtual void prepare_bf16() {}
  virtual void forward_ws_bf16(const te::Problem& pb, const te::TrafficMatrix& tm,
                               const std::vector<double>* capacities, ModelForward& fwd,
                               const ShardPlan& shards, ShardStat* stats = nullptr) const {
    forward_ws(pb, tm, capacities, fwd, shards, stats);
  }

  void save(const std::string& path) { nn::save_params(path, params()); }
  bool load(const std::string& path) { return nn::load_params(path, params()); }
};

struct TealModelConfig {
  FlowGnnConfig gnn;
  PolicyConfig policy;
};

class TealModel : public Model {
 public:
  TealModel(const TealModelConfig& cfg, int k_paths, std::uint64_t seed = 42);

  struct Forward {
    FlowGnn::Forward gnn;
    PolicyNet::Forward policy;
    nn::Mat mask;    // (D, k) path validity
    nn::Mat logits;  // (D, k), alias of policy.logits
  };

  // Narrowed inference caches (the float mirrors a SolveWorkspace grows when
  // the solve runs at Precision::f32 *or* bf16 — bf16 narrows only the stored
  // weights, so its activations live in the same float workspace). Never
  // feeds backward().
  struct ForwardF32 {
    FlowGnn::ForwardF gnn;
    PolicyNet::ForwardF policy;
  };

  Forward forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const std::vector<double>* capacities = nullptr) const;

  // Backward from d(loss)/d(logits) through the policy net and FlowGNN.
  void backward(const te::Problem& pb, const Forward& fwd, const nn::Mat& grad_logits);

  // Typed cache behind the TrainBackward seam: the policy/GNN backward
  // workspaces plus the two inter-module grad matrices.
  struct BackwardCache {
    PolicyNet::BackwardWs policy;
    FlowGnn::BackwardWs gnn;
    nn::Mat grad_input;  // (D, k*dim) d(loss)/d(policy input)
    nn::Mat grad_paths;  // (N_p, dim) d(loss)/d(final path embeddings)
  };

  // Workspace variant writing into (and reusing) a caller-owned Forward.
  void forward(const te::Problem& pb, const te::TrafficMatrix& tm,
               const std::vector<double>* capacities, Forward& fwd) const;

  // Model interface (type-erased wrappers over the typed forward/backward).
  ModelForward forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                         const std::vector<double>* capacities = nullptr) const override;
  void forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const std::vector<double>* capacities, ModelForward& fwd) const override;
  void forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const std::vector<double>* capacities, ModelForward& fwd,
                  const ShardPlan& shards, ShardStat* stats = nullptr) const override;
  bool supports_f32_forward() const override { return true; }
  void prepare_f32() override;
  void forward_ws_f32(const te::Problem& pb, const te::TrafficMatrix& tm,
                      const std::vector<double>* capacities, ModelForward& fwd,
                      const ShardPlan& shards, ShardStat* stats = nullptr) const override;
  bool supports_bf16_forward() const override { return true; }
  void prepare_bf16() override;
  void forward_ws_bf16(const te::Problem& pb, const te::TrafficMatrix& tm,
                       const std::vector<double>* capacities, ModelForward& fwd,
                       const ShardPlan& shards, ShardStat* stats = nullptr) const override;
  void backward_m(const te::Problem& pb, const ModelForward& fwd,
                  const nn::Mat& grad_logits) override;
  bool supports_train_ws() const override { return true; }
  void backward_ws(const te::Problem& pb, const ModelForward& fwd,
                   const nn::Mat& grad_logits, TrainBackward& bws,
                   nn::GradRefs grads) const override;
  std::vector<nn::Param*> params() override;

  int k_paths() const override { return k_; }
  const TealModelConfig& config() const { return cfg_; }

 private:
  // Shared pipeline body; leaves Forward::logits (the typed-API alias of
  // policy.logits) unset so forward_ws can skip that copy on the hot path.
  // The FlowGNN demand passes, the policy-input assembly and the policy
  // forward all fan out over `shards`.
  void run_pipeline(const te::Problem& pb, const te::TrafficMatrix& tm,
                    const std::vector<double>* capacities, Forward& fwd,
                    const ShardPlan& shards, ShardStat* stats = nullptr) const;

  // Shared body of forward_ws_f32/forward_ws_bf16: identical float cache,
  // fused per-demand tail and f64 widening; only the weight panels the GNN
  // and policy read differ.
  void forward_ws_narrowed(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ModelForward& fwd,
                           const ShardPlan& shards, ShardStat* stats, bool use_bf16) const;

  TealModelConfig cfg_;
  int k_;
  util::Rng init_rng_;  // declared before the networks: it seeds their init
  FlowGnn gnn_;
  PolicyNet policy_;
  // ModelForward::owner tag for the narrowed caches: an f32 or bf16 cache
  // holds a ForwardF32, not a Forward, so it must never be reinterpreted by
  // the f64 path (and vice versa). f32 and bf16 share the tag deliberately —
  // their caches are the same type and every activation is fully rewritten
  // per forward, so switching between them reuses the buffers. Tagging with
  // this member's address instead of `this` keeps the narrow/f64 cache kinds
  // distinct per model instance.
  char f32_owner_tag_ = 0;
};

// Converts logits + mask into per-demand split ratios via masked softmax.
// Rows with no valid path stay all-zero.
nn::Mat splits_from_logits(const nn::Mat& logits, const nn::Mat& mask);

// Writes a (D, k) split matrix into a flat Allocation on the problem's global
// path id space.
te::Allocation allocation_from_splits(const te::Problem& pb, const nn::Mat& splits);

// Same, into a caller-owned Allocation (capacity reused on warm calls).
void allocation_from_splits_into(const te::Problem& pb, const nn::Mat& splits,
                                 te::Allocation& a);

// Row-range variant for sharded callers: writes the split entries of demands
// [d_begin, d_end) only; `a.split` must be pre-sized to total_paths().
void allocation_from_splits_rows(const te::Problem& pb, const nn::Mat& splits,
                                 te::Allocation& a, int d_begin, int d_end);

}  // namespace teal::core
