#include "core/train_context.h"

namespace teal::core {

void TrainContext::prepare(Model& model, const te::Problem& /*pb*/, int rollout_batch,
                           int workers) {
  ws_path_ = model.supports_train_ws();
  rollout_batch_ = std::max(1, rollout_batch);
  int w = workers;
  if (!ws_path_) {
    // backward_m accumulates into the shared Param::g — concurrent rollouts
    // would race, so the legacy path is sequential by construction.
    w = 1;
  } else if (w == 0) {
    // Auto: the threads a new fork-join region from this thread can use,
    // never more than there are rollouts to run.
    w = static_cast<int>(util::ThreadPool::available_parallelism());
  }
  workers_ = std::clamp(w, 1, rollout_batch_);
  const util::ChunkPlan plan =
      util::chunk_plan(static_cast<std::size_t>(rollout_batch_),
                       static_cast<std::size_t>(workers_));
  chunk_ = std::max<int>(1, static_cast<int>(plan.chunk));

  params_ = model.params();
  slots_.resize(static_cast<std::size_t>(rollout_batch_));
  if (ws_path_) {
    for (auto& s : slots_) s.grads.prepare(params_);
  }
  bws_.resize(static_cast<std::size_t>(std::max(1, chunks_for(rollout_batch_))));
}

}  // namespace teal::core
