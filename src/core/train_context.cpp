#include "core/train_context.h"

namespace teal::core {

void TrainContext::prepare(Model& model, const te::Problem& /*pb*/, int rollout_batch,
                           int workers) {
  // Re-prepare (a topology or batch-shape swap) first destroys every
  // container holding arena memory, then rewinds the arenas while retaining
  // their chunks — the rebuild below re-bumps out of already-mapped memory,
  // so a swap costs O(1) heap allocations just like the first prepare.
  // Abandoned by-then-unreachable arena blocks (never individually freed —
  // mem-root semantics) are reclaimed by the same reset.
  // swap-to-empty, not `= {}`: the braced form keeps the old capacity, and a
  // buffer surviving into the rewound arena would be bumped over below.
  util::AVec<Slot>().swap(slots_);
  util::AVec<TrainBackward>().swap(bws_);
  params_.clear();
  for (auto& a : chunk_arenas_) a.reset();
  arena_.reset();

  ws_path_ = model.supports_train_ws();
  rollout_batch_ = std::max(1, rollout_batch);
  int w = workers;
  if (!ws_path_) {
    // backward_m accumulates into the shared Param::g — concurrent rollouts
    // would race, so the legacy path is sequential by construction.
    w = 1;
  } else if (w == 0) {
    // Auto: the threads a new fork-join region from this thread can use,
    // never more than there are rollouts to run.
    w = static_cast<int>(util::ThreadPool::available_parallelism());
  }
  workers_ = std::clamp(w, 1, rollout_batch_);
  const util::ChunkPlan plan =
      util::chunk_plan(static_cast<std::size_t>(rollout_batch_),
                       static_cast<std::size_t>(workers_));
  chunk_ = std::max<int>(1, static_cast<int>(plan.chunk));

  params_ = model.params();
  const auto n_chunks = static_cast<std::size_t>(std::max(1, chunks_for(rollout_batch_)));
  chunk_arenas_.resize(n_chunks);

  // Everything below — the slot array, every GradAccum matrix, the backward
  // scratch array — bump-allocates from the context's root arena.
  util::ArenaScope bind(&arena_);
  slots_.resize(static_cast<std::size_t>(rollout_batch_));
  if (ws_path_) {
    for (auto& s : slots_) s.grads.prepare(params_);
  }
  bws_.resize(n_chunks);
}

}  // namespace teal::core
