#include "core/teal_scheme.h"

#include <algorithm>
#include <stdexcept>

#include "lp/path_lp.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal::core {

namespace {

AdmmConfig make_admm_config(const te::Problem& pb, const TealSchemeConfig& cfg) {
  AdmmConfig ac;
  ac.iterations = cfg.admm_iterations > 0 ? cfg.admm_iterations
                                          : default_admm_iterations(pb.graph().num_nodes());
  if (cfg.objective == te::Objective::kLatencyPenalizedFlow) {
    ac.path_weight = lp::latency_penalty_weights(pb, cfg.latency_penalty);
  }
  return ac;
}

}  // namespace

TealScheme::TealScheme(const te::Problem& pb, std::unique_ptr<Model> model,
                       const TealSchemeConfig& cfg, std::string name)
    : hub_(std::shared_ptr<Model>(std::move(model))), cfg_(cfg),
      admm_(pb, make_admm_config(pb, cfg)), name_(std::move(name)) {}

std::uint64_t TealScheme::publish_model(std::unique_ptr<Model> m) {
  if (!m) throw std::invalid_argument("TealScheme::publish_model: model is null");
  // Mutation-before-visibility: narrowed weight mirrors matching the current
  // precision knob are built on the new model while it is still private to
  // this call. Once published the model is immutable (replicas may be reading
  // it from any thread).
  if (precision_ == te::Precision::f32 && m->supports_f32_forward()) m->prepare_f32();
  if (precision_ == te::Precision::bf16 && m->supports_bf16_forward()) m->prepare_bf16();
  return hub_.publish(std::shared_ptr<Model>(std::move(m)));
}

ShardPlan TealScheme::plan_shards(const te::Problem& pb, int shard_count) const {
  const int nd = pb.num_demands();
  const int n = shard_count != 0 ? shard_count
                                 : auto_shard_count(nd, pb.total_paths());
  return ShardPlan::make(nd, n);
}

void TealScheme::solve_with(SolveWorkspace& ws, const te::Problem& pb,
                            const te::TrafficMatrix& tm, te::Allocation& out,
                            double* seconds_out, int shard_count) const {
  util::Timer timer;
  // Pin one model version for the whole solve: a publish_model() landing
  // mid-solve changes nothing here — the snapshot's shared_ptr keeps the old
  // version alive and this solve finishes bit-identically on it.
  const ModelSnapshot snap = hub_.acquire();
  const Model& model = *snap.model;
  const ShardPlan plan = plan_shards(pb, shard_count);
  ws.prepare_shards(plan);
  ShardStat* stats = ws.shard_stats.data();
  pb.capacities_into(ws.caps);
  // Precision dispatch: the narrowed paths (f32 and bf16) run the NN forward
  // through the float mirror workspace — bf16 only changes which weight
  // panels the kernels read — and widen logits/mask back to double, so
  // everything from the softmax down is precision-oblivious.
  const bool f32 = precision_ == te::Precision::f32 && model.supports_f32_forward();
  const bool bf16 = precision_ == te::Precision::bf16 && model.supports_bf16_forward();
  ModelForward& fwd = (f32 || bf16) ? ws.fwd32 : ws.fwd;
  if (bf16) {
    model.forward_ws_bf16(pb, tm, &ws.caps, fwd, plan, stats);
  } else if (f32) {
    model.forward_ws_f32(pb, tm, &ws.caps, fwd, plan, stats);
  } else {
    model.forward_ws(pb, tm, &ws.caps, fwd, plan, stats);
  }
  // Masked softmax + allocation writeback, fused per demand slice (sized on
  // this thread first — resize must not run under the fan-out). The mask
  // guard enforces the policy-boundary contract: a demand with paths but a
  // fully-zero mask row would otherwise flow into ADMM as a silent all-zero
  // allocation.
  ws.splits.resize(fwd.logits.rows(), fwd.logits.cols());
  out.split.resize(static_cast<std::size_t>(pb.total_paths()));
  run_sharded(plan, stats, [&](int /*shard*/, int d0, int d1) {
    check_policy_mask_rows(pb, fwd.mask, d0, d1);
    nn::softmax_rows_range(fwd.logits, fwd.mask, ws.splits, d0, d1);
    allocation_from_splits_rows(pb, ws.splits, out, d0, d1);
  });
  if (cfg_.use_admm) {
    admm_.fine_tune(tm, ws.caps, out, ws.admm, plan, stats);
  }
  if (seconds_out != nullptr) *seconds_out = timer.seconds();
}

te::Allocation TealScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  te::Allocation a;
  solve_into(pb, tm, a);
  return a;
}

// The scheme-owned single-solve workspace grows out of the scheme's arena —
// solve_into always runs on the caller's thread, so the binding is private
// to this scheme's ws_ (batch workspaces warm on pool threads, unbound).
void TealScheme::solve_into(const te::Problem& pb, const te::TrafficMatrix& tm,
                            te::Allocation& out) {
  util::ArenaScope bind(&arena_);
  solve_with(ws_, pb, tm, out, &last_seconds_, shard_count_);
}

te::BatchSolve TealScheme::solve_batch(const te::Problem& pb,
                                       std::span<const te::TrafficMatrix> tms) {
  auto& pool = util::ThreadPool::global();
  const std::size_t n_threads = pool.size() + 1;  // workers + caller
  // Composition cost model for the two parallelism axes. With two or more
  // matrices, across-matrix fan-out solves up to n_threads of them
  // concurrently (batch wall ≈ one solve-time) — a sequential loop of
  // sharded solves would need shard speedup > tms.size() to beat that, and
  // shard speedup is sublinear (fork-join barriers; ~1.5-2x at 4 shards on
  // the shard_scaling ledger), so the batch axis wins. A *single* matrix is
  // the case batching cannot touch: the sequential fallback below runs it
  // through solve_into(), where the shard knob fans its demand slices over
  // the otherwise-idle pool. Inside a pool worker (or inline scope) nested
  // fan-out of either axis is impossible and the fallback runs fully
  // sequential.
  if (std::min(tms.size(), n_threads) <= 1 || util::ThreadPool::in_pool_worker()) {
    return te::Scheme::solve_batch(pb, tms);
  }
  // Across-matrix fan-out: contiguous chunks, one persistent workspace per
  // chunk; the calling thread works chunk 0 with the scheme's own workspace
  // while the pool workers take the rest. Every solve runs with one shard
  // and inline kernels — the batch already owns all the threads, so
  // intra-solve fan-out would only oversubscribe.
  util::Timer wall;
  te::BatchSolve out;
  out.allocs.resize(tms.size());
  out.solve_seconds.resize(tms.size());
  const util::ChunkPlan plan = util::chunk_plan(tms.size(), n_threads);
  if (batch_ws_.size() + 1 < plan.n_chunks) batch_ws_.resize(plan.n_chunks - 1);
  std::vector<std::future<void>> futs;
  futs.reserve(plan.n_chunks - 1);
  for (std::size_t c = 1; c < plan.n_chunks; ++c) {
    const std::size_t begin = c * plan.chunk;
    const std::size_t end = std::min(tms.size(), begin + plan.chunk);
    futs.push_back(pool.submit([this, &pb, tms, &out, c, begin, end] {
      for (std::size_t t = begin; t < end; ++t) {
        solve_with(batch_ws_[c - 1], pb, tms[t], out.allocs[t], &out.solve_seconds[t],
                   /*shard_count=*/1);
      }
    }));
  }
  // Every future must be joined before `out` can unwind — a still-running
  // worker writes into it. Collect the first error and rethrow after.
  std::exception_ptr error;
  try {
    util::ThreadPool::ScopedInline inline_kernels;  // chunk 0 stays on this thread
    for (std::size_t t = 0; t < std::min(tms.size(), plan.chunk); ++t) {
      solve_with(ws_, pb, tms[t], out.allocs[t], &out.solve_seconds[t],
                 /*shard_count=*/1);
    }
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  // Keep the documented last_solve_seconds() semantics ("the batch's final
  // solve"), matching the sequential loop.
  if (!out.solve_seconds.empty()) last_seconds_ = out.solve_seconds.back();
  out.wall_seconds = wall.seconds();
  return out;
}

void TealScheme::reset_workspace() {
  // Containers first, then the arena rewind: clear() must run its
  // (no-op) deallocations while the chunks are still mapped.
  ws_.clear();
  batch_ws_.clear();
  arena_.reset();
}

void train_or_load_model(Model& model, const te::Problem& pb, const traffic::Trace& train,
                         te::Objective objective, const TealTrainOptions& opts) {
  if (!opts.cache_path.empty() && model.load(opts.cache_path)) return;
  if (opts.trainer == Trainer::kComaStar) {
    ComaConfig cfg = opts.coma;
    if (opts.workers >= 0) cfg.workers = opts.workers;
    if (opts.rollout_batch > 0) cfg.rollout_batch = opts.rollout_batch;
    train_coma(model, pb, train, objective, cfg);
  } else {
    DirectLossConfig cfg = opts.direct;
    if (opts.workers >= 0) cfg.workers = opts.workers;
    if (opts.rollout_batch > 0) cfg.rollout_batch = opts.rollout_batch;
    train_direct_loss(model, pb, train, objective, cfg);
  }
  if (!opts.cache_path.empty()) {
    model.save(opts.cache_path);
  }
}

std::unique_ptr<TealScheme> make_teal_scheme(const te::Problem& pb,
                                             const traffic::Trace& train,
                                             const TealSchemeConfig& cfg,
                                             const TealTrainOptions& opts) {
  auto model = std::make_unique<TealModel>(cfg.model, pb.k_paths());
  train_or_load_model(*model, pb, train, cfg.objective, opts);
  return std::make_unique<TealScheme>(pb, std::move(model), cfg);
}

}  // namespace teal::core
