#include "core/teal_scheme.h"

#include "lp/path_lp.h"
#include "util/timer.h"

namespace teal::core {

namespace {

AdmmConfig make_admm_config(const te::Problem& pb, const TealSchemeConfig& cfg) {
  AdmmConfig ac;
  ac.iterations = cfg.admm_iterations > 0 ? cfg.admm_iterations
                                          : default_admm_iterations(pb.graph().num_nodes());
  if (cfg.objective == te::Objective::kLatencyPenalizedFlow) {
    ac.path_weight = lp::latency_penalty_weights(pb, cfg.latency_penalty);
  }
  return ac;
}

}  // namespace

TealScheme::TealScheme(const te::Problem& pb, std::unique_ptr<Model> model,
                       const TealSchemeConfig& cfg, std::string name)
    : model_(std::move(model)), cfg_(cfg), admm_(pb, make_admm_config(pb, cfg)),
      name_(std::move(name)) {}

te::Allocation TealScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;
  const std::vector<double> caps = pb.capacities();
  auto fwd = model_->forward_m(pb, tm, &caps);
  nn::Mat splits = splits_from_logits(fwd.logits, fwd.mask);
  te::Allocation a = allocation_from_splits(pb, splits);
  if (cfg_.use_admm) {
    admm_.fine_tune(tm, caps, a);
  }
  last_seconds_ = timer.seconds();
  return a;
}

void train_or_load_model(Model& model, const te::Problem& pb, const traffic::Trace& train,
                         te::Objective objective, const TealTrainOptions& opts) {
  if (!opts.cache_path.empty() && model.load(opts.cache_path)) return;
  if (opts.trainer == Trainer::kComaStar) {
    train_coma(model, pb, train, objective, opts.coma);
  } else {
    train_direct_loss(model, pb, train, objective, opts.direct);
  }
  if (!opts.cache_path.empty()) {
    model.save(opts.cache_path);
  }
}

std::unique_ptr<TealScheme> make_teal_scheme(const te::Problem& pb,
                                             const traffic::Trace& train,
                                             const TealSchemeConfig& cfg,
                                             const TealTrainOptions& opts) {
  auto model = std::make_unique<TealModel>(cfg.model, pb.k_paths());
  train_or_load_model(*model, pb, train, cfg.objective, opts);
  return std::make_unique<TealScheme>(pb, std::move(model), cfg);
}

}  // namespace teal::core
