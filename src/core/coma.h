// coma.h — COMA*, the multi-agent RL algorithm that trains Teal (§3.3, App B).
//
// Each demand is an agent; all agents share the policy network and observe
// only their own flow embeddings (their local state s_i). Training follows
// centralized-training-of-decentralized-policies:
//   1. a stochastic policy: the network's logits are the mean of a Gaussian;
//      actions z_i ~ N(mu_i, sigma^2) are squashed by masked softmax into
//      split ratios (deployment uses the mean directly);
//   2. COMA*'s one-step return: TE allocations in one interval do not affect
//      future traffic matrices, so the expected return *is* the immediate
//      reward — no discounting, no critic bootstrap;
//   3. a counterfactual baseline per agent, estimated with Monte Carlo
//      samples a'_i ~ pi(.|s_i) evaluated by the RewardSimulator while the
//      other agents' actions stay fixed (Equation 2);
//   4. the policy gradient g = E[ sum_i A_i * grad log pi(a_i|s_i) ]
//      (Equation 3), backpropagated end to end through the policy network
//      *and* FlowGNN, then applied with Adam.
//
// Execution model (the workspace-batched pipeline, DESIGN.md "Training
// pipeline"): rollouts are processed in batches of `rollout_batch` matrices
// per Adam step, fanned over up to `workers` pool chunks — one
// core::TrainContext slot (SolveWorkspace + gradient accumulator) per
// rollout, one backward scratch per worker, then a strictly ordered
// sequential reduction into Param::g. Exploration noise is keyed per
// (rollout, demand) via coma_noise_seed() rather than per worker, so the
// trained parameters are bit-identical for every worker count; the worker
// knob is pure throughput. rollout_batch = 1 keeps the paper's
// one-step-per-matrix semantics; larger batches trade gradient freshness
// for cross-rollout parallelism.
#pragma once

#include <functional>

#include "core/model.h"
#include "core/reward.h"
#include "traffic/traffic.h"

namespace teal::core {

struct ComaConfig {
  int epochs = 4;
  int mc_samples = 4;        // Monte Carlo samples for the baseline
  double sigma = 0.2;        // Gaussian exploration stddev on logits
  double lr = 1e-3;          // Adam learning rate (paper: 1e-4, week-long runs)
  double grad_clip = 10.0;
  double adv_norm_eps = 1e-6;
  std::uint64_t seed = 123;
  bool verbose = false;
  // Rollouts per Adam step. 1 (default) = the seed per-matrix semantics;
  // larger batches accumulate gradients over `rollout_batch` matrices before
  // stepping, which is what the worker fan-out parallelizes across.
  int rollout_batch = 1;
  // Concurrent rollout workers (core::TrainContext): 0 = auto (threads
  // available to the calling context, capped by rollout_batch), 1 =
  // sequential, n = at most n. Pure throughput knob — trained parameters are
  // bit-identical for every value (tests/train_test.cpp).
  int workers = 0;
  // Optional validation matrices: after each epoch the deployment-mode (mean
  // action) objective is evaluated on them and the best-scoring parameters
  // are restored at the end — policy-gradient training drifts, and the paper
  // holds out 100 matrices for validation (§5.1).
  const traffic::Trace* validation = nullptr;
};

struct TrainStats {
  std::vector<double> epoch_reward;      // mean global reward per epoch
  std::vector<double> epoch_validation;  // mean validation score (if enabled)
  int best_epoch = -1;                   // epoch whose params were kept
  // Heap allocations observed during optimizer steps after the first (the
  // workspace contract: warm training steps allocate nothing on the
  // workspace path — tests/train_test.cpp asserts 0).
  std::uint64_t warm_step_allocs = 0;
};

// Deterministic exploration-stream derivation (a documented contract,
// mirrored by tests/train_test.cpp's reference trainer): rollout (epoch, t)
// draws demand d's joint-action noise from a stateless
// util::CounterRng(coma_noise_seed(seed, epoch, t, 2*d)) and its
// counterfactual baseline noise from tag 2*d + 1. Streams are keyed by
// (rollout, demand) — never by worker or thread — which is what makes
// training results independent of the worker count and the inner shard
// plan. CounterRng replaced the per-draw-site mt19937_64 (a ~2.5 KB state
// re-seeded thousands of times per epoch) with a 32-byte counter stream —
// the cold-start PR's RNG half.
std::uint64_t coma_noise_seed(std::uint64_t seed, int epoch, int t, std::uint64_t tag);

// Trains `model` in place on the given training matrices. Returns per-epoch
// mean rewards so callers/tests can assert learning progress.
TrainStats train_coma(Model& model, const te::Problem& pb, const traffic::Trace& train,
                      te::Objective obj, const ComaConfig& cfg = {});

// Deployment-mode evaluation helper: mean normalized objective of the model's
// (mean-action) allocations over a trace.
double evaluate_model(const Model& model, const te::Problem& pb,
                      const traffic::Trace& trace, te::Objective obj);

}  // namespace teal::core
