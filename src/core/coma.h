// coma.h — COMA*, the multi-agent RL algorithm that trains Teal (§3.3, App B).
//
// Each demand is an agent; all agents share the policy network and observe
// only their own flow embeddings (their local state s_i). Training follows
// centralized-training-of-decentralized-policies:
//   1. a stochastic policy: the network's logits are the mean of a Gaussian;
//      actions z_i ~ N(mu_i, sigma^2) are squashed by masked softmax into
//      split ratios (deployment uses the mean directly);
//   2. COMA*'s one-step return: TE allocations in one interval do not affect
//      future traffic matrices, so the expected return *is* the immediate
//      reward — no discounting, no critic bootstrap;
//   3. a counterfactual baseline per agent, estimated with Monte Carlo
//      samples a'_i ~ pi(.|s_i) evaluated by the RewardSimulator while the
//      other agents' actions stay fixed (Equation 2);
//   4. the policy gradient g = E[ sum_i A_i * grad log pi(a_i|s_i) ]
//      (Equation 3), backpropagated end to end through the policy network
//      *and* FlowGNN, then applied with Adam.
#pragma once

#include <functional>

#include "core/model.h"
#include "core/reward.h"
#include "traffic/traffic.h"

namespace teal::core {

struct ComaConfig {
  int epochs = 4;
  int mc_samples = 4;        // Monte Carlo samples for the baseline
  double sigma = 0.2;        // Gaussian exploration stddev on logits
  double lr = 1e-3;          // Adam learning rate (paper: 1e-4, week-long runs)
  double grad_clip = 10.0;
  double adv_norm_eps = 1e-6;
  std::uint64_t seed = 123;
  bool verbose = false;
  // Optional validation matrices: after each epoch the deployment-mode (mean
  // action) objective is evaluated on them and the best-scoring parameters
  // are restored at the end — policy-gradient training drifts, and the paper
  // holds out 100 matrices for validation (§5.1).
  const traffic::Trace* validation = nullptr;
};

struct TrainStats {
  std::vector<double> epoch_reward;      // mean global reward per epoch
  std::vector<double> epoch_validation;  // mean validation score (if enabled)
  int best_epoch = -1;                   // epoch whose params were kept
};

// Trains `model` in place on the given training matrices. Returns per-epoch
// mean rewards so callers/tests can assert learning progress.
TrainStats train_coma(Model& model, const te::Problem& pb, const traffic::Trace& train,
                      te::Objective obj, const ComaConfig& cfg = {});

// Deployment-mode evaluation helper: mean normalized objective of the model's
// (mean-action) allocations over a trace.
double evaluate_model(const Model& model, const te::Problem& pb,
                      const traffic::Trace& trace, te::Objective obj);

}  // namespace teal::core
