// served.h — open-loop trace replay through the serving layer.
//
// sim::run_online is closed-loop: the control loop itself decides when the
// next solve starts, so the scheme is never offered more work than it can
// do. run_served is the complementary driver: requests *arrive* on a fixed
// schedule (every arrival_interval_seconds, independent of completions —
// the open-loop discipline of real serving benchmarks), the server's
// admission control sheds what cannot meet the deadline, and the result
// records which matrices got fresh allocations and at what latency. At
// arrival interval 0 the whole trace is offered as one burst, which turns
// the driver into a saturation/throughput harness — the mode the
// serve_scaling bench sweeps replica counts with.
#pragma once

#include <optional>
#include <string>

#include "serve/fleet.h"
#include "serve/replica.h"
#include "serve/server.h"
#include "te/problem.h"
#include "traffic/traffic.h"

namespace teal::sim {

struct ServedConfig {
  std::size_t n_replicas = 1;
  // Open-loop spacing between request arrivals. 0 = burst (no pacing).
  double arrival_interval_seconds = 0.0;
  // Demand shards per replica solve (workspace replicas only): 0 = auto via
  // the serving cost model (serve::pick_replica_shards — shards engage only
  // when a lone replica would leave pool threads idle), 1 = sequential,
  // n = exact. Bit-identical results for every value; latency-only knob.
  int shard_count = 0;
  // NN-forward precision for the served solves (applied via
  // te::Scheme::set_precision before the replica threads start, restored
  // after the run; ignored by schemes without narrowed support); nullopt
  // leaves the scheme's own setting untouched, mirroring shard_count's 0.
  // Unlike the shard knob this perturbs allocations within the tested
  // per-precision (f32/bf16) error bound.
  std::optional<te::Precision> precision;
  serve::ServeConfig serve;
};

struct ServedResult {
  // Index-aligned with the trace. Shed requests leave an empty Allocation
  // and accepted[t] == false.
  std::vector<te::Allocation> allocs;
  std::vector<char> accepted;
  serve::ServeStats stats;
};

// Replays `trace` through a Server built from `replicas` (one serving thread
// each). Blocks until every accepted request completed.
ServedResult run_served(const te::Problem& pb, const traffic::Trace& trace,
                        std::vector<serve::ReplicaPtr> replicas, const ServedConfig& cfg);

// Convenience overload: builds the replicas from the scheme's traits
// (serve::make_replicas) — workspace replicas over a shared TealScheme, or
// one instance per replica via `factory` for the LP baselines.
ServedResult run_served(te::Scheme& scheme, const te::Problem& pb,
                        const traffic::Trace& trace, const ServedConfig& cfg,
                        const serve::SchemeFactory& factory = nullptr);

// ---- Fleet replay -----------------------------------------------------------
//
// Multi-tenant counterpart of run_served: several (problem, trace, scheme)
// slices replayed through one serve::Fleet, replicas split across tenants by
// the fleet's placement policy. Arrivals from all tenants are merged onto one
// open-loop schedule, round-robin across tenants that still have trace left —
// the simulated analogue of teal_slap's weighted multi-tenant mix, minus the
// wire.

// One tenant's slice of the replay. `pb`, `trace` and `scheme` must outlive
// the call; `factory` follows the serve::make_replicas contract for non-warm
// schemes.
struct ServedTenant {
  std::string name;
  const te::Problem* pb = nullptr;
  const traffic::Trace* trace = nullptr;
  te::Scheme* scheme = nullptr;
  serve::SchemeFactory factory;
  double offered_weight = 1.0;         // placement demand signal
  std::size_t requested_replicas = 0;  // static-policy count
};

struct ServedFleetConfig {
  // Replica budget + placement policy by name (FleetConfig isn't copyable —
  // it can own a policy object — so the replay config carries the two plain
  // knobs; plug a custom policy through serve::Fleet directly).
  std::size_t total_replicas = 0;  // 0 = hardware concurrency
  std::string policy = "load-proportional";
  // Open-loop spacing between merged arrivals (across all tenants).
  // 0 = burst.
  double arrival_interval_seconds = 0.0;
  int shard_count = 0;       // per-replica inner shards (see ServedConfig)
  serve::ServeConfig serve;  // applied to every tenant's server
};

struct ServedFleetResult {
  // Index-aligned with the corresponding tenant's trace, same contract as
  // ServedResult (shed requests leave an empty Allocation, accepted == 0).
  struct Tenant {
    std::vector<te::Allocation> allocs;
    std::vector<char> accepted;
  };
  std::vector<Tenant> tenants;  // registration order
  serve::FleetStats stats;
};

// Replays every tenant's trace through one Fleet. Blocks until every accepted
// request on every tenant completed.
ServedFleetResult run_served_fleet(const std::vector<ServedTenant>& tenants,
                                   const ServedFleetConfig& cfg);

}  // namespace teal::sim
