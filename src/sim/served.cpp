#include "sim/served.h"

#include <chrono>
#include <thread>

namespace teal::sim {

ServedResult run_served(const te::Problem& pb, const traffic::Trace& trace,
                        std::vector<serve::ReplicaPtr> replicas, const ServedConfig& cfg) {
  ServedResult res;
  const std::size_t n = static_cast<std::size_t>(trace.size());
  res.allocs.resize(n);
  res.accepted.assign(n, 0);

  serve::Server server(pb, std::move(replicas), cfg.serve);
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (std::size_t t = 0; t < n; ++t) {
    if (cfg.arrival_interval_seconds > 0.0) {
      // Open-loop: arrival t happens at start + t·interval whether or not
      // earlier requests finished (no back-pressure on the arrival process).
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(t) * cfg.arrival_interval_seconds));
      std::this_thread::sleep_until(due);
    }
    res.accepted[t] =
        server.submit(trace.at(static_cast<int>(t)), res.allocs[t]) ? 1 : 0;
  }
  server.drain();
  res.stats = server.stop();
  return res;
}

ServedResult run_served(te::Scheme& scheme, const te::Problem& pb,
                        const traffic::Trace& trace, const ServedConfig& cfg,
                        const serve::SchemeFactory& factory) {
  // Precision is a scheme-level switch (weight snapshots, not per-solve
  // state), so it must be set before the replica threads start (Server's
  // constructor, inside the inner run_served) and restored only after they
  // join — mid-run switching would race with the replicas' solves.
  te::Scheme::ScopedPrecision precision_guard(scheme, cfg.precision);
  return run_served(
      pb, trace,
      serve::make_replicas(scheme, cfg.n_replicas, factory, cfg.shard_count), cfg);
}

}  // namespace teal::sim
