#include "sim/served.h"

#include <chrono>
#include <thread>

namespace teal::sim {

ServedResult run_served(const te::Problem& pb, const traffic::Trace& trace,
                        std::vector<serve::ReplicaPtr> replicas, const ServedConfig& cfg) {
  ServedResult res;
  const std::size_t n = static_cast<std::size_t>(trace.size());
  res.allocs.resize(n);
  res.accepted.assign(n, 0);

  serve::Server server(pb, std::move(replicas), cfg.serve);
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (std::size_t t = 0; t < n; ++t) {
    if (cfg.arrival_interval_seconds > 0.0) {
      // Open-loop: arrival t happens at start + t·interval whether or not
      // earlier requests finished (no back-pressure on the arrival process).
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(t) * cfg.arrival_interval_seconds));
      std::this_thread::sleep_until(due);
    }
    res.accepted[t] =
        server.submit(trace.at(static_cast<int>(t)), res.allocs[t]) ? 1 : 0;
  }
  server.drain();
  res.stats = server.stop();
  return res;
}

ServedResult run_served(te::Scheme& scheme, const te::Problem& pb,
                        const traffic::Trace& trace, const ServedConfig& cfg,
                        const serve::SchemeFactory& factory) {
  // Precision is a scheme-level switch (weight snapshots, not per-solve
  // state), so it must be set before the replica threads start (Server's
  // constructor, inside the inner run_served) and restored only after they
  // join — mid-run switching would race with the replicas' solves.
  te::Scheme::ScopedPrecision precision_guard(scheme, cfg.precision);
  return run_served(
      pb, trace,
      serve::make_replicas(scheme, cfg.n_replicas, factory, cfg.shard_count), cfg);
}

ServedFleetResult run_served_fleet(const std::vector<ServedTenant>& tenants,
                                   const ServedFleetConfig& cfg) {
  ServedFleetResult res;
  res.tenants.resize(tenants.size());

  serve::FleetConfig fcfg;
  fcfg.total_replicas = cfg.total_replicas;
  fcfg.policy = cfg.policy;
  serve::Fleet fleet(std::move(fcfg));
  for (const ServedTenant& t : tenants) {
    serve::TenantConfig tc;
    tc.name = t.name;
    tc.pb = t.pb;
    tc.scheme = t.scheme;
    tc.factory = t.factory;
    tc.serve = cfg.serve;
    tc.shard_count = cfg.shard_count;
    tc.offered_weight = t.offered_weight;
    tc.requested_replicas = t.requested_replicas;
    fleet.add_tenant(std::move(tc));
  }
  fleet.start();

  std::vector<serve::Fleet::Route> routes;
  std::vector<std::size_t> next(tenants.size(), 0);
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    routes.push_back(fleet.route(tenants[i].name));
    const auto n = static_cast<std::size_t>(tenants[i].trace->size());
    res.tenants[i].allocs.resize(n);
    res.tenants[i].accepted.assign(n, 0);
    remaining += n;
  }

  // Merged open-loop schedule: one global arrival clock, round-robin over the
  // tenants that still have trace left — different tenants' requests land in
  // different per-tenant queues, so this loop is the only cross-tenant
  // ordering that exists.
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  std::size_t arrival = 0;
  while (remaining > 0) {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const std::size_t t = next[i];
      if (t >= res.tenants[i].allocs.size()) continue;
      if (cfg.arrival_interval_seconds > 0.0) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(static_cast<double>(arrival) *
                                                      cfg.arrival_interval_seconds));
        std::this_thread::sleep_until(due);
      }
      res.tenants[i].accepted[t] =
          routes[i].server->submit(tenants[i].trace->at(static_cast<int>(t)),
                                   res.tenants[i].allocs[t])
              ? 1
              : 0;
      ++next[i];
      ++arrival;
      --remaining;
    }
  }
  fleet.drain();
  res.stats = fleet.stop();
  return res;
}

}  // namespace teal::sim
