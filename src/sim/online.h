// online.h — the online TE control loop (§5.1 "satisfied demand", Figure 18).
//
// The paper's key evaluation metric accounts for TE control delay: while a
// scheme is still computing, the previous allocation stays deployed, so slow
// schemes serve traffic with stale routes. We simulate the loop on a
// timeline: at the start of each 5-minute interval the scheme — if idle —
// begins solving the newest traffic matrix; the result activates when the
// (measured) solve time elapses. An interval's satisfied demand is the
// time-weighted average over the allocations active within it. Figure 18's
// "NCFlow and POP can only compute a new allocation for every other or every
// third traffic matrix" falls out of this model naturally.
//
// Because this repo's problems are scaled down (DESIGN.md substitution #5),
// measured solve times are smaller than the paper's testbed times for *all*
// schemes. `time_scale` multiplies measured times before they meet the
// interval budget so benches can place the LP baselines in the same
// time-budget regime as the paper (both raw and scaled runs are reported in
// EXPERIMENTS.md).
//
// For schemes with a parallel solve_batch (Teal), run_online() computes an
// allocation for *every* trace matrix up front — amortizing batch
// parallelism across the trace — and then replays the staleness timeline
// over the per-matrix solve times (DESIGN.md, "workspace/batch
// architecture"). The replay decides which solves would actually have
// started given the budget, so the reported intervals match the lazy
// control loop. Sequential schemes (the LP baselines) keep the lazy loop
// itself and only compute the solves that really start. Note that a
// parallel solve_batch measures per-solve times under fan-out contention
// (see the BatchSolve note in te/scheme.h); callers holding the times
// against a tight interval budget should pass a time_scale anchored on the
// measured median — exactly what the figure benches' scheme_time_scale
// mapping does.
#pragma once

#include <optional>
#include <vector>

#include "te/scheme.h"
#include "traffic/traffic.h"

namespace teal::sim {

struct OnlineConfig {
  double interval_seconds = 300.0;
  double time_scale = 1.0;
  te::Objective objective = te::Objective::kTotalFlow;
  // Demand-shard knob applied to sharding-capable schemes for the duration
  // of the run_online() call (te::Scheme::set_shard_count convention; the
  // scheme's own setting is restored afterwards): 0 leaves it untouched
  // (auto by default for Teal — solve_batch composes the batch and shard
  // axes itself: multi-matrix traces run as across-matrix fan-out with
  // sequential inners, a single-matrix trace as one sharded solve).
  int shard_count = 0;
  // NN-forward precision for the run's solves, applied and restored the same
  // way (ignored by schemes without narrowed support); nullopt leaves the
  // scheme's own setting untouched, mirroring shard_count's 0. f32 trades a
  // bounded allocation perturbation for the vectorized blocked forward;
  // bf16 additionally halves the streamed weight storage at a larger,
  // still-ledgered perturbation.
  std::optional<te::Precision> precision;
};

struct IntervalResult {
  bool started_solve = false;
  double solve_seconds = 0.0;     // raw measured seconds of the solve started here
  double satisfied_pct = 0.0;     // time-weighted over the interval
};

struct OnlineResult {
  std::vector<IntervalResult> intervals;
  std::vector<double> solve_times;  // raw seconds per completed solve
  double mean_satisfied_pct = 0.0;
};

// Runs the control loop over `trace` (batched pass + replay for parallel
// schemes, lazy loop otherwise — see above). The pre-existing routes before
// the first solve completes are shortest-path routes.
OnlineResult run_online(te::Scheme& scheme, const te::Problem& pb,
                        const traffic::Trace& trace, const OnlineConfig& cfg = {});

// Same control-loop accounting, but replays precomputed per-matrix
// allocations and solve times instead of invoking the scheme again. Lets the
// bench harness derive both offline and online metrics from a single solve
// pass. `allocs[t]`/`solve_seconds[t]` correspond to trace matrix t; the
// simulator decides which solves actually start given the budget.
OnlineResult replay_online(const te::Problem& pb, const traffic::Trace& trace,
                           const std::vector<te::Allocation>& allocs,
                           const std::vector<double>& solve_seconds,
                           const OnlineConfig& cfg = {});

// §5.3 failure reaction: solve on the healthy topology, fail `failed_edges`
// (capacity 0), let the scheme recompute, and report the satisfied demand of
// the post-failure interval as the time-weighted mix of stale routes (with
// traffic on failed links dropped) and the recomputed routes. The problem's
// graph is restored before returning.
struct FailureResult {
  double satisfied_pct = 0.0;       // time-weighted post-failure interval
  double stale_pct = 0.0;           // old routes on failed topology
  double recomputed_pct = 0.0;      // new routes on failed topology
  double resolve_seconds = 0.0;     // raw recompute time
};

FailureResult eval_failure_reaction(te::Scheme& scheme, te::Problem& pb,
                                    const te::TrafficMatrix& tm,
                                    const std::vector<topo::EdgeId>& failed_edges,
                                    const OnlineConfig& cfg = {});

// Samples `n_failures` distinct edges to fail; both directions of a physical
// link fail together (a fiber cut takes out the pair).
std::vector<topo::EdgeId> sample_link_failures(const topo::Graph& g, int n_failures,
                                               std::uint64_t seed);

}  // namespace teal::sim
