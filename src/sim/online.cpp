#include "sim/online.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"

namespace teal::sim {

namespace {

double eval_pct(const te::Problem& pb, const te::TrafficMatrix& tm,
                const te::Allocation& a, const OnlineConfig& cfg) {
  switch (cfg.objective) {
    case te::Objective::kTotalFlow:
      return te::satisfied_demand_pct(pb, tm, a);
    case te::Objective::kLatencyPenalizedFlow: {
      double total = tm.total();
      if (total <= 0.0) return 100.0;
      return 100.0 * te::latency_penalized_flow(pb, tm, a) / total;
    }
    case te::Objective::kMinMaxLinkUtil:
      // "Satisfied demand" is not the MLU metric; callers evaluating MLU use
      // te::max_link_utilization directly. Fall back to satisfied demand.
      return te::satisfied_demand_pct(pb, tm, a);
  }
  return 0.0;
}

}  // namespace

namespace {

// Shared control-loop core: `solve_fn(t)` produces (allocation, raw seconds)
// for the matrix of interval t.
template <typename SolveFn>
OnlineResult run_loop(const te::Problem& pb, const traffic::Trace& trace,
                      const OnlineConfig& cfg, SolveFn&& solve_fn) {
  OnlineResult res;
  res.intervals.resize(static_cast<std::size_t>(trace.size()));
  const double I = cfg.interval_seconds;

  te::Allocation active = pb.shortest_path_allocation();
  // Pending solve result and its activation time.
  bool pending = false;
  te::Allocation pending_alloc;
  double pending_activation = 0.0;
  double free_at = 0.0;  // when the scheme can start the next solve

  for (int t = 0; t < trace.size(); ++t) {
    const double t0 = static_cast<double>(t) * I;
    const double t1 = t0 + I;
    auto& iv = res.intervals[static_cast<std::size_t>(t)];

    if (!pending && free_at <= t0 + 1e-9) {
      auto [a, raw] = solve_fn(t);
      const double scaled = raw * cfg.time_scale;
      iv.started_solve = true;
      iv.solve_seconds = raw;
      res.solve_times.push_back(raw);
      pending = true;
      pending_alloc = std::move(a);
      pending_activation = t0 + scaled;
      free_at = pending_activation;
    }

    // Time-weighted satisfied demand across the segments of this interval.
    double weighted = 0.0;
    double cur = t0;
    while (cur < t1 - 1e-12) {
      double seg_end = t1;
      if (pending && pending_activation > cur && pending_activation < t1) {
        seg_end = pending_activation;
      }
      double pct = eval_pct(pb, trace.at(t), active, cfg);
      weighted += pct * (seg_end - cur) / I;
      cur = seg_end;
      if (pending && pending_activation <= cur + 1e-12) {
        active = std::move(pending_alloc);
        pending = false;
      }
    }
    if (pending && pending_activation <= t1 + 1e-12) {
      active = std::move(pending_alloc);
      pending = false;
    }
    iv.satisfied_pct = weighted;
  }

  double sum = 0.0;
  for (const auto& iv : res.intervals) sum += iv.satisfied_pct;
  res.mean_satisfied_pct = res.intervals.empty()
                               ? 0.0
                               : sum / static_cast<double>(res.intervals.size());
  return res;
}

}  // namespace

OnlineResult run_online(te::Scheme& scheme, const te::Problem& pb,
                        const traffic::Trace& trace, const OnlineConfig& cfg) {
  // Apply the config's shard knob for the duration of this call only — the
  // scheme is borrowed, and a later run with a default config must see the
  // scheme's own setting again.
  struct KnobGuard {
    te::Scheme* s = nullptr;
    int prev = 0;
    ~KnobGuard() {
      if (s != nullptr) s->set_shard_count(prev);
    }
  } guard;
  if (cfg.shard_count != 0 && scheme.supports_demand_sharding()) {
    guard.s = &scheme;
    guard.prev = scheme.shard_count();
    scheme.set_shard_count(cfg.shard_count);
  }
  te::Scheme::ScopedPrecision precision_guard(scheme, cfg.precision);
  if (scheme.supports_parallel_batch()) {
    // One batched solve pass over the whole trace, then the staleness replay
    // over the measured times. Solving matrices the replay never deploys is
    // free here relative to the fan-out's amortization win.
    te::BatchSolve batch = scheme.solve_batch(pb, std::span(trace.matrices));
    return replay_online(pb, trace, batch.allocs, batch.solve_seconds, cfg);
  }
  // Sequential schemes keep the lazy control loop: only the solves that
  // actually start given the budget are computed (a slow LP skips matrices
  // while busy, exactly like the paper's testbed).
  return run_loop(pb, trace, cfg, [&](int t) {
    te::Allocation a = scheme.solve(pb, trace.at(t));
    return std::make_pair(std::move(a), scheme.last_solve_seconds());
  });
}

OnlineResult replay_online(const te::Problem& pb, const traffic::Trace& trace,
                           const std::vector<te::Allocation>& allocs,
                           const std::vector<double>& solve_seconds,
                           const OnlineConfig& cfg) {
  if (static_cast<int>(allocs.size()) < trace.size() ||
      static_cast<int>(solve_seconds.size()) < trace.size()) {
    throw std::invalid_argument("replay_online: series shorter than trace");
  }
  return run_loop(pb, trace, cfg, [&](int t) {
    return std::make_pair(allocs[static_cast<std::size_t>(t)],
                          solve_seconds[static_cast<std::size_t>(t)]);
  });
}

FailureResult eval_failure_reaction(te::Scheme& scheme, te::Problem& pb,
                                    const te::TrafficMatrix& tm,
                                    const std::vector<topo::EdgeId>& failed_edges,
                                    const OnlineConfig& cfg) {
  FailureResult out;
  // Routes computed on the healthy topology.
  te::Allocation before = scheme.solve(pb, tm);

  // Fail the links.
  std::vector<double> saved;
  saved.reserve(failed_edges.size());
  for (topo::EdgeId e : failed_edges) {
    saved.push_back(pb.graph().edge(e).capacity);
    pb.mutable_graph().set_capacity(e, 0.0);
  }
  scheme.on_topology_change(pb);

  // Recompute on the failed topology.
  te::Allocation after = scheme.solve(pb, tm);
  out.resolve_seconds = scheme.last_solve_seconds();

  const std::vector<double> failed_caps = pb.capacities();
  out.stale_pct = te::satisfied_demand_pct(pb, tm, before, &failed_caps);
  out.recomputed_pct = te::satisfied_demand_pct(pb, tm, after, &failed_caps);
  const double frac_stale =
      std::clamp(out.resolve_seconds * cfg.time_scale / cfg.interval_seconds, 0.0, 1.0);
  out.satisfied_pct = frac_stale * out.stale_pct + (1.0 - frac_stale) * out.recomputed_pct;

  // Restore.
  for (std::size_t i = 0; i < failed_edges.size(); ++i) {
    pb.mutable_graph().set_capacity(failed_edges[i], saved[i]);
  }
  scheme.on_topology_change(pb);
  return out;
}

std::vector<topo::EdgeId> sample_link_failures(const topo::Graph& g, int n_failures,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::set<topo::EdgeId> failed;
  int guard = 0;
  while (static_cast<int>(failed.size()) < 2 * n_failures &&
         static_cast<int>(failed.size()) < g.num_edges() && ++guard < 100000) {
    auto e = static_cast<topo::EdgeId>(rng.uniform_int(0, g.num_edges() - 1));
    if (failed.count(e)) continue;
    failed.insert(e);
    topo::EdgeId rev = g.find_edge(g.edge(e).dst, g.edge(e).src);
    if (rev != topo::kInvalidEdge) failed.insert(rev);
  }
  return {failed.begin(), failed.end()};
}

}  // namespace teal::sim
